//! Crash-safe segmented append-only record log.
//!
//! `gcomm-store` persists compile-cache entries so a restarted `gcommc
//! serve` process (or a respawned cluster shard) warms from disk instead
//! of recompiling its whole working set. The design goals, in order:
//!
//! 1. **Never serve a corrupt record.** Every record carries a checksum
//!    over its lengths, key, and value (FNV-1a with a SplitMix64
//!    finalizer). Recovery verifies it before an entry becomes visible; a
//!    mismatch quarantines the record — counted, truncated away, never
//!    returned.
//! 2. **Survive torn writes.** A crash mid-append leaves a partial record
//!    at the tail (or, via a lying filesystem, a zeroed page in the
//!    middle). The recovery scan stops at the first record that is
//!    incomplete or fails verification, truncates the segment there, and
//!    deletes all later segments, so the recovered state is always a
//!    prefix of the committed write sequence.
//! 3. **Bounded disk.** Appends go to a byte-capped active segment; on
//!    rotation, sealed segments are compacted latest-wins into one file
//!    via write-tmp → fsync → atomic-rename, crash-safe at every step.
//!
//! The log stores opaque byte strings — it knows nothing about compile
//! requests. `gcomm-serve` layers the content-addressed cache semantics on
//! top: the key is the canonical cache-key material and the value is the
//! rendered response payload, so recovered hits are bit-identical to cold
//! compiles by construction.
//!
//! On-disk record layout (all integers little-endian):
//!
//! ```text
//! magic     [4]  b"GCL1"
//! key_len   [4]  u32
//! val_len   [4]  u32
//! checksum  [8]  fnv1a(key_len ∥ val_len ∥ key ∥ value), SplitMix64-mixed
//! key       [key_len]
//! value     [val_len]
//! ```

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

pub mod fault;

/// First bytes of every record.
pub const MAGIC: [u8; 4] = *b"GCL1";

/// Bytes before the key: magic + two lengths + checksum.
pub const HEADER_LEN: usize = 4 + 4 + 4 + 8;

const COMPACT_TMP: &str = "compact.tmp";

/// Record checksum: 64-bit FNV-1a over the length fields and payload,
/// passed through the SplitMix64 finalizer so single-bit flips anywhere in
/// the record avalanche across the whole word (plain FNV-1a of a short
/// tail-flip changes few high bits).
pub fn record_checksum(key: &[u8], value: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&(key.len() as u32).to_le_bytes());
    eat(&(value.len() as u32).to_le_bytes());
    eat(key);
    eat(value);
    // SplitMix64 finalizer (same constants as `machine::fault::Rng64`).
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// When appends reach the disk platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append: a completed append survives any crash.
    Always,
    /// fsync every `n` appends: bounds loss to the last `n - 1` records.
    Interval(u32),
    /// Never fsync on append (OS writeback only). Sealing and compaction
    /// still sync — segment structure stays crash-safe, only tail records
    /// are at risk.
    Off,
}

impl FsyncPolicy {
    /// Parses a `--persist-fsync` CLI value: `always`, `off`, or
    /// `interval:N` (N ≥ 1).
    ///
    /// # Errors
    ///
    /// Returns a description of the problem on any other input.
    pub fn parse(spec: &str) -> Result<FsyncPolicy, String> {
        match spec {
            "always" => Ok(FsyncPolicy::Always),
            "off" => Ok(FsyncPolicy::Off),
            other => match other.strip_prefix("interval:") {
                Some(n) => match n.parse::<u32>() {
                    Ok(n) if n >= 1 => Ok(FsyncPolicy::Interval(n)),
                    _ => Err(format!("fsync interval must be a count ≥ 1, got `{n}`")),
                },
                None => Err(format!(
                    "unknown fsync policy `{other}` (expected always, off, or interval:N)"
                )),
            },
        }
    }
}

/// Tuning for a [`Store`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Rotate the active segment once it exceeds this many bytes.
    pub segment_bytes: u64,
    /// Append durability policy.
    pub fsync: FsyncPolicy,
    /// Plausibility bound on each of key and value length. Recovery
    /// treats a header claiming more as corrupt instead of allocating it.
    pub max_record_bytes: u32,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_bytes: 8 * 1024 * 1024,
            fsync: FsyncPolicy::Always,
            max_record_bytes: 64 * 1024 * 1024,
        }
    }
}

/// What one [`Store::append`] did beyond writing the record, so callers
/// (the serve layer) can count fsyncs, rotations, and compactions without
/// this crate depending on the observability registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Appended {
    /// The record was fsynced before returning.
    pub fsynced: bool,
    /// The append sealed the active segment and opened a fresh one.
    pub rotated: bool,
    /// Rotation triggered a latest-wins compaction of sealed segments.
    pub compacted: bool,
}

/// Outcome of the recovery scan run by [`Store::open`].
#[derive(Debug, Default)]
pub struct Recovery {
    /// Live entries, latest-wins, ordered oldest → newest last write (so
    /// replaying them into an LRU leaves the newest entry most recent).
    pub entries: Vec<(Vec<u8>, Vec<u8>)>,
    /// Checksum-valid records scanned (including superseded duplicates).
    pub records_ok: u64,
    /// Records dropped because they were incomplete on disk: a truncated
    /// header, a payload shorter than its header claims, or a foreign
    /// magic. The classic torn-write shapes.
    pub torn: u64,
    /// Records dropped because they were structurally complete but failed
    /// verification: a checksum mismatch or an implausible length field.
    /// These are quarantined — counted and truncated, never served.
    pub quarantined: u64,
    /// Segments present after the scan (sealed + active).
    pub segments: u64,
}

/// A segmented append-only log rooted at one directory.
///
/// Not internally synchronized — the serve layer wraps it in a `Mutex`
/// alongside the in-memory cache it shadows.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    cfg: StoreConfig,
    active: File,
    active_index: u64,
    active_bytes: u64,
    appends_since_sync: u32,
}

impl Store {
    /// Opens (creating if necessary) the log in `dir`, running the
    /// recovery scan first: segments are read in order, the scan stops at
    /// the first torn or corrupt record, the damaged segment is truncated
    /// at that point, and every later segment is deleted — recovered state
    /// is a prefix of what was committed. A leftover `compact.tmp` from a
    /// crashed compaction is removed (the rename never happened, so the
    /// sealed segments it was replacing are still intact).
    ///
    /// # Errors
    ///
    /// Returns any I/O error creating, reading, or repairing the
    /// directory.
    pub fn open(dir: &Path, cfg: StoreConfig) -> io::Result<(Store, Recovery)> {
        fs::create_dir_all(dir)?;
        let tmp = dir.join(COMPACT_TMP);
        if tmp.exists() {
            fs::remove_file(&tmp)?;
        }

        let mut recovery = Recovery::default();
        let segments = segment_indices(dir)?;
        let mut live: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut keep = segments.len();
        for (pos, &index) in segments.iter().enumerate() {
            let path = segment_path(dir, index);
            let scan = scan_segment(&path, cfg.max_record_bytes)?;
            recovery.records_ok += scan.records.len() as u64;
            live.extend(scan.records);
            if scan.clean {
                continue;
            }
            recovery.torn += u64::from(scan.torn);
            recovery.quarantined += u64::from(scan.quarantined);
            // Truncate the damaged segment at the last good record and
            // drop everything logged after it.
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(scan.valid_bytes)?;
            f.sync_all()?;
            for &later in &segments[pos + 1..] {
                fs::remove_file(segment_path(dir, later))?;
            }
            fsync_dir(dir)?;
            keep = pos + 1;
            break;
        }

        recovery.entries = latest_wins(live);
        let active_index = segments.get(keep.saturating_sub(1)).copied().unwrap_or(0);
        let active_index = if keep == 0 || active_index == 0 {
            1
        } else {
            active_index
        };
        let active_path = segment_path(dir, active_index);
        let fresh = !active_path.exists();
        let active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&active_path)?;
        if fresh {
            fsync_dir(dir)?;
        }
        let active_bytes = active.metadata()?.len();
        recovery.segments = segment_indices(dir)?.len() as u64;

        Ok((
            Store {
                dir: dir.to_path_buf(),
                cfg,
                active,
                active_index,
                active_bytes,
                appends_since_sync: 0,
            },
            recovery,
        ))
    }

    /// Appends one record, then applies the fsync policy, byte-capped
    /// rotation, and (after rotation, when at least two sealed segments
    /// exist) latest-wins compaction.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` when key or value exceeds
    /// [`StoreConfig::max_record_bytes`], or any I/O error writing.
    pub fn append(&mut self, key: &[u8], value: &[u8]) -> io::Result<Appended> {
        let max = self.cfg.max_record_bytes as usize;
        if key.len() > max || value.len() > max {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "record of {}+{} bytes exceeds the {max}-byte record bound",
                    key.len(),
                    value.len()
                ),
            ));
        }
        let mut buf = Vec::with_capacity(HEADER_LEN + key.len() + value.len());
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(value.len() as u32).to_le_bytes());
        buf.extend_from_slice(&record_checksum(key, value).to_le_bytes());
        buf.extend_from_slice(key);
        buf.extend_from_slice(value);
        self.active.write_all(&buf)?;
        self.active_bytes += buf.len() as u64;

        let mut out = Appended::default();
        self.appends_since_sync += 1;
        let want_sync = match self.cfg.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::Interval(n) => self.appends_since_sync >= n.max(1),
            FsyncPolicy::Off => false,
        };
        if want_sync {
            self.active.sync_all()?;
            self.appends_since_sync = 0;
            out.fsynced = true;
        }

        if self.active_bytes > self.cfg.segment_bytes {
            self.rotate()?;
            out.rotated = true;
            // Compaction needs two or more sealed segments to be worth a
            // rewrite; with one, the rename would be a copy of itself.
            if segment_indices(&self.dir)?.len() > 2 {
                self.compact_sealed()?;
                out.compacted = true;
            }
        }
        Ok(out)
    }

    /// Bytes in the active (unsealed) segment.
    pub fn active_bytes(&self) -> u64 {
        self.active_bytes
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Seals the active segment (final fsync unless the policy is `Off`)
    /// and opens the next one.
    fn rotate(&mut self) -> io::Result<()> {
        if self.cfg.fsync != FsyncPolicy::Off {
            self.active.sync_all()?;
        }
        self.active_index += 1;
        let path = segment_path(&self.dir, self.active_index);
        self.active = OpenOptions::new().create(true).append(true).open(&path)?;
        self.active_bytes = 0;
        self.appends_since_sync = 0;
        fsync_dir(&self.dir)?;
        Ok(())
    }

    /// Rewrites all sealed segments as one latest-wins segment. Crash-safe
    /// by construction: the merged file is written to `compact.tmp`,
    /// fsynced, atomically renamed over the *highest* sealed segment, and
    /// only then are the older sealed segments unlinked. A crash before
    /// the rename leaves the originals untouched (open() discards the
    /// tmp); a crash after it leaves stale older segments whose records
    /// the compacted segment supersedes — recovery's latest-wins replay
    /// yields the same live set either way.
    fn compact_sealed(&mut self) -> io::Result<()> {
        let sealed: Vec<u64> = segment_indices(&self.dir)?
            .into_iter()
            .filter(|&i| i != self.active_index)
            .collect();
        if sealed.len() < 2 {
            return Ok(());
        }
        let mut records = Vec::new();
        for &index in &sealed {
            let scan = scan_segment(&segment_path(&self.dir, index), self.cfg.max_record_bytes)?;
            records.extend(scan.records);
        }
        let live = latest_wins(records);

        let tmp = self.dir.join(COMPACT_TMP);
        let mut out = Vec::new();
        for (key, value) in &live {
            out.extend_from_slice(&MAGIC);
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(&(value.len() as u32).to_le_bytes());
            out.extend_from_slice(&record_checksum(key, value).to_le_bytes());
            out.extend_from_slice(key);
            out.extend_from_slice(value);
        }
        let mut f = File::create(&tmp)?;
        f.write_all(&out)?;
        f.sync_all()?;
        drop(f);

        let target = *sealed.last().expect("len checked ≥ 2");
        fs::rename(&tmp, segment_path(&self.dir, target))?;
        fsync_dir(&self.dir)?;
        for &index in &sealed[..sealed.len() - 1] {
            fs::remove_file(segment_path(&self.dir, index))?;
        }
        fsync_dir(&self.dir)?;
        Ok(())
    }
}

/// One scanned segment.
#[derive(Debug)]
struct SegmentScan {
    /// Valid records in write order.
    records: Vec<(Vec<u8>, Vec<u8>)>,
    /// The whole file verified.
    clean: bool,
    /// Scan stopped on an incomplete record (torn/short write).
    torn: bool,
    /// Scan stopped on a complete-looking record failing verification.
    quarantined: bool,
    /// Byte offset of the first bad record (file length when clean).
    valid_bytes: u64,
}

fn scan_segment(path: &Path, max_record_bytes: u32) -> io::Result<SegmentScan> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    let mut records = Vec::new();
    let mut off = 0usize;
    let (mut torn, mut quarantined) = (false, false);
    while off < data.len() {
        let rest = &data[off..];
        if rest.len() < HEADER_LEN || rest[..4] != MAGIC {
            torn = true;
            break;
        }
        let key_len = u32::from_le_bytes(rest[4..8].try_into().unwrap()) as usize;
        let val_len = u32::from_le_bytes(rest[8..12].try_into().unwrap()) as usize;
        let stored = u64::from_le_bytes(rest[12..20].try_into().unwrap());
        if key_len > max_record_bytes as usize || val_len > max_record_bytes as usize {
            quarantined = true;
            break;
        }
        let total = HEADER_LEN + key_len + val_len;
        if rest.len() < total {
            torn = true;
            break;
        }
        let key = &rest[HEADER_LEN..HEADER_LEN + key_len];
        let value = &rest[HEADER_LEN + key_len..total];
        if record_checksum(key, value) != stored {
            quarantined = true;
            break;
        }
        records.push((key.to_vec(), value.to_vec()));
        off += total;
    }
    Ok(SegmentScan {
        records,
        clean: !(torn || quarantined),
        torn,
        quarantined,
        valid_bytes: off as u64,
    })
}

/// Collapses a write-ordered record sequence to its live set: one entry
/// per key, holding the last-written value, ordered by last write.
fn latest_wins(records: Vec<(Vec<u8>, Vec<u8>)>) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut slot: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut out: Vec<Option<(Vec<u8>, Vec<u8>)>> = Vec::with_capacity(records.len());
    for (key, value) in records {
        if let Some(&i) = slot.get(&key) {
            out[i] = None;
        }
        slot.insert(key.clone(), out.len());
        out.push(Some((key, value)));
    }
    out.into_iter().flatten().collect()
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:06}.log"))
}

/// Paths of the segment files in `dir`, oldest first. Fault-injection
/// tests (and operators) use this to find the bytes to damage; ordinary
/// reads and writes go through [`Store::open`] / [`Store::append`].
///
/// # Errors
///
/// Returns any I/O error listing the directory.
pub fn segment_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    Ok(segment_indices(dir)?
        .into_iter()
        .map(|i| segment_path(dir, i))
        .collect())
}

/// Segment indices present in `dir`, ascending. Non-segment files are
/// ignored.
fn segment_indices(dir: &Path) -> io::Result<Vec<u64>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(index) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push(index);
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// fsync the directory itself so renames and unlinks are durable.
fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gcomm-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_cfg() -> StoreConfig {
        StoreConfig {
            segment_bytes: 256,
            fsync: FsyncPolicy::Off,
            max_record_bytes: 4096,
        }
    }

    #[test]
    fn roundtrip_across_reopen() {
        let dir = tmp_dir("roundtrip");
        let (mut s, rec) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(rec.records_ok, 0);
        assert!(rec.entries.is_empty());
        s.append(b"k1", b"v1").unwrap();
        s.append(b"k2", b"v2").unwrap();
        s.append(b"k1", b"v1-new").unwrap();
        drop(s);
        let (_s, rec) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(rec.records_ok, 3);
        assert_eq!((rec.torn, rec.quarantined), (0, 0));
        assert_eq!(
            rec.entries,
            vec![
                (b"k2".to_vec(), b"v2".to_vec()),
                (b"k1".to_vec(), b"v1-new".to_vec()),
            ],
            "latest wins, ordered by last write"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("off"), Ok(FsyncPolicy::Off));
        assert_eq!(
            FsyncPolicy::parse("interval:8"),
            Ok(FsyncPolicy::Interval(8))
        );
        assert!(FsyncPolicy::parse("interval:0").is_err());
        assert!(FsyncPolicy::parse("interval:x").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }

    #[test]
    fn always_policy_reports_fsync_and_interval_batches() {
        let dir = tmp_dir("fsync");
        let cfg = StoreConfig {
            fsync: FsyncPolicy::Always,
            ..StoreConfig::default()
        };
        let (mut s, _) = Store::open(&dir, cfg).unwrap();
        assert!(s.append(b"a", b"1").unwrap().fsynced);
        drop(s);
        let cfg = StoreConfig {
            fsync: FsyncPolicy::Interval(3),
            ..StoreConfig::default()
        };
        let (mut s, _) = Store::open(&dir, cfg).unwrap();
        assert!(!s.append(b"b", b"1").unwrap().fsynced);
        assert!(!s.append(b"c", b"1").unwrap().fsynced);
        assert!(s.append(b"d", b"1").unwrap().fsynced, "third append syncs");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_and_compaction_bound_segments() {
        let dir = tmp_dir("rotate");
        let (mut s, _) = Store::open(&dir, small_cfg()).unwrap();
        let mut rotated = 0;
        let mut compacted = 0;
        for i in 0..200 {
            // 16 hot keys, constantly rewritten: compaction has work.
            let key = format!("key-{:02}", i % 16);
            let val = format!("value-{i:04}-{}", "x".repeat(32));
            let a = s.append(key.as_bytes(), val.as_bytes()).unwrap();
            rotated += u32::from(a.rotated);
            compacted += u32::from(a.compacted);
        }
        assert!(rotated > 0, "256-byte segments must rotate");
        assert!(compacted > 0, "rotation must trigger compaction");
        let n = segment_indices(&dir).unwrap().len();
        assert!(n <= 3, "compaction failed to bound segments: {n}");
        drop(s);
        let (_s, rec) = Store::open(&dir, small_cfg()).unwrap();
        assert_eq!((rec.torn, rec.quarantined), (0, 0));
        assert_eq!(rec.entries.len(), 16);
        for (key, value) in &rec.entries {
            let k = String::from_utf8(key.clone()).unwrap();
            let v = String::from_utf8(value.clone()).unwrap();
            let i: usize = v[6..10].parse().unwrap();
            assert_eq!(k, format!("key-{:02}", i % 16), "wrong key/value pairing");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates_and_second_recovery_is_idempotent() {
        let dir = tmp_dir("torn");
        let (mut s, _) = Store::open(&dir, StoreConfig::default()).unwrap();
        s.append(b"k1", b"v1").unwrap();
        s.append(b"k2", b"v2").unwrap();
        drop(s);
        // Tear the second record: chop 3 bytes off the file tail.
        let path = segment_path(&dir, 1);
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let (_s, rec) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(rec.records_ok, 1);
        assert_eq!((rec.torn, rec.quarantined), (1, 0));
        assert_eq!(rec.entries, vec![(b"k1".to_vec(), b"v1".to_vec())]);
        // The repair truncated the tail, so a second scan is clean.
        let (_s2, rec2) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!((rec2.torn, rec2.quarantined), (0, 0));
        assert_eq!(rec2.entries, rec.entries);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_quarantines_never_serves() {
        let dir = tmp_dir("flip");
        let (mut s, _) = Store::open(&dir, StoreConfig::default()).unwrap();
        s.append(b"good", b"payload").unwrap();
        s.append(b"bad", b"payload").unwrap();
        drop(s);
        let path = segment_path(&dir, 1);
        let mut data = fs::read(&path).unwrap();
        // Flip one payload bit inside the second record's value.
        let second = HEADER_LEN + 4 + 7;
        let target = second + HEADER_LEN + 3 + 2;
        data[target] ^= 0x10;
        fs::write(&path, &data).unwrap();
        let (_s, rec) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!((rec.torn, rec.quarantined), (0, 1));
        assert_eq!(rec.entries, vec![(b"good".to_vec(), b"payload".to_vec())]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn implausible_length_is_quarantined_not_allocated() {
        let dir = tmp_dir("length");
        let (mut s, _) = Store::open(&dir, small_cfg()).unwrap();
        s.append(b"k", b"v").unwrap();
        drop(s);
        let path = segment_path(&dir, 1);
        let mut data = fs::read(&path).unwrap();
        data[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&path, &data).unwrap();
        let (_s, rec) = Store::open(&dir, small_cfg()).unwrap();
        assert_eq!((rec.torn, rec.quarantined), (0, 1));
        assert!(rec.entries.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damage_in_sealed_segment_drops_later_segments() {
        let dir = tmp_dir("prefix");
        let (mut s, _) = Store::open(&dir, small_cfg()).unwrap();
        for i in 0..40 {
            let key = format!("unique-key-{i:04}");
            s.append(key.as_bytes(), b"some value bytes").unwrap();
        }
        drop(s);
        let segs = segment_indices(&dir).unwrap();
        assert!(segs.len() >= 2, "need multiple segments for this test");
        // Corrupt the FIRST segment's first record checksum.
        let path = segment_path(&dir, segs[0]);
        let mut data = fs::read(&path).unwrap();
        data[12] ^= 0xFF;
        fs::write(&path, &data).unwrap();
        let (_s, rec) = Store::open(&dir, small_cfg()).unwrap();
        assert_eq!(rec.quarantined, 1);
        assert!(
            rec.entries.is_empty(),
            "everything after the first bad record is dropped"
        );
        assert!(
            segment_indices(&dir).unwrap().len() <= 2,
            "later segments must be deleted"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_compact_tmp_is_discarded() {
        let dir = tmp_dir("tmp");
        let (mut s, _) = Store::open(&dir, StoreConfig::default()).unwrap();
        s.append(b"k", b"v").unwrap();
        drop(s);
        fs::write(dir.join(COMPACT_TMP), b"half-written garbage").unwrap();
        let (_s, rec) = Store::open(&dir, StoreConfig::default()).unwrap();
        assert!(!dir.join(COMPACT_TMP).exists());
        assert_eq!(rec.entries, vec![(b"k".to_vec(), b"v".to_vec())]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_record_is_rejected() {
        let dir = tmp_dir("oversize");
        let (mut s, _) = Store::open(&dir, small_cfg()).unwrap();
        let huge = vec![0u8; 5000];
        let err = s.append(b"k", &huge).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        fs::remove_dir_all(&dir).unwrap();
    }
}
