//! Seeded disk-fault injection for recovery property tests.
//!
//! The communication simulator replays network faults from a seeded plan
//! (`machine::fault::FaultPlan`); this module is the disk-side analogue.
//! A [`DiskFaultPlan`] deterministically mutates a real segment file the
//! way crashes and dying media do:
//!
//! * [`DiskFault::TornWrite`] — truncate at an arbitrary byte offset, the
//!   shape a crash mid-`write(2)` leaves behind,
//! * [`DiskFault::ShortWrite`] — chop a few bytes off the tail, a write
//!   that returned early,
//! * [`DiskFault::BitFlip`] — flip one bit anywhere, silent media
//!   corruption,
//! * [`DiskFault::ZeroRange`] — zero an aligned range, a page whose fsync
//!   the drive acknowledged but never performed.
//!
//! The plan is pure std (this crate has no dependencies), so it re-rolls
//! the same SplitMix64 generator as `machine::fault::Rng64` rather than
//! importing it.

use std::fs::{self, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::Path;

/// The kinds of damage a [`DiskFaultPlan`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// Truncate the file at an arbitrary offset.
    TornWrite,
    /// Truncate a short suffix (1–32 bytes) off the tail.
    ShortWrite,
    /// Flip a single bit at an arbitrary offset.
    BitFlip,
    /// Zero a 256-byte-aligned range (up to 1 KiB), modeling a lost page.
    ZeroRange,
}

/// What one injection actually did, for assertion messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Corruption {
    /// The fault that was applied.
    pub kind: DiskFault,
    /// First byte affected.
    pub offset: u64,
    /// Bytes affected (for truncations: bytes removed).
    pub len: u64,
}

/// A deterministic source of disk damage: the same seed applied to the
/// same file bytes always injects the same corruption.
#[derive(Debug, Clone)]
pub struct DiskFaultPlan {
    state: u64,
}

impl DiskFaultPlan {
    /// Creates a plan from a seed.
    pub fn new(seed: u64) -> Self {
        DiskFaultPlan {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// SplitMix64 step (same constants as `machine::fault::Rng64`).
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform pick in `[0, n)` — for choosing which segment file to
    /// damage. Returns 0 when `n` is 0.
    pub fn next_pick(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Injects a randomly chosen fault kind into `path`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error reading or mutating the file.
    pub fn inject(&mut self, path: &Path) -> io::Result<Corruption> {
        let kind = match self.below(4) {
            0 => DiskFault::TornWrite,
            1 => DiskFault::ShortWrite,
            2 => DiskFault::BitFlip,
            _ => DiskFault::ZeroRange,
        };
        self.inject_kind(path, kind)
    }

    /// Injects a specific fault kind into `path`. A zero-length file is
    /// left untouched (`len == 0` in the returned report).
    ///
    /// # Errors
    ///
    /// Returns any I/O error reading or mutating the file.
    pub fn inject_kind(&mut self, path: &Path, kind: DiskFault) -> io::Result<Corruption> {
        let file_len = fs::metadata(path)?.len();
        if file_len == 0 {
            return Ok(Corruption {
                kind,
                offset: 0,
                len: 0,
            });
        }
        match kind {
            DiskFault::TornWrite => {
                let offset = self.below(file_len);
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len(offset)?;
                f.sync_all()?;
                Ok(Corruption {
                    kind,
                    offset,
                    len: file_len - offset,
                })
            }
            DiskFault::ShortWrite => {
                let cut = 1 + self.below(file_len.min(32));
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len(file_len - cut)?;
                f.sync_all()?;
                Ok(Corruption {
                    kind,
                    offset: file_len - cut,
                    len: cut,
                })
            }
            DiskFault::BitFlip => {
                let offset = self.below(file_len);
                let bit = self.below(8) as u32;
                let mut f = OpenOptions::new().read(true).write(true).open(path)?;
                let mut byte = [0u8; 1];
                f.seek(SeekFrom::Start(offset))?;
                f.read_exact(&mut byte)?;
                byte[0] ^= 1 << bit;
                f.seek(SeekFrom::Start(offset))?;
                f.write_all(&byte)?;
                f.sync_all()?;
                Ok(Corruption {
                    kind,
                    offset,
                    len: 1,
                })
            }
            DiskFault::ZeroRange => {
                let offset = self.below(file_len) & !255;
                let len = (1 + self.below(1024)).min(file_len - offset);
                let mut f = OpenOptions::new().write(true).open(path)?;
                f.seek(SeekFrom::Start(offset))?;
                f.write_all(&vec![0u8; len as usize])?;
                f.sync_all()?;
                Ok(Corruption { kind, offset, len })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_file(tag: &str, bytes: &[u8]) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "gcomm-store-fault-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn injections_are_deterministic() {
        let payload: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
        let a = tmp_file("det-a", &payload);
        let b = tmp_file("det-b", &payload);
        let ca = DiskFaultPlan::new(99).inject(&a).unwrap();
        let cb = DiskFaultPlan::new(99).inject(&b).unwrap();
        assert_eq!(ca, cb);
        assert_eq!(fs::read(&a).unwrap(), fs::read(&b).unwrap());
        fs::remove_file(a).unwrap();
        fs::remove_file(b).unwrap();
    }

    #[test]
    fn each_kind_changes_the_file() {
        for (i, kind) in [
            DiskFault::TornWrite,
            DiskFault::ShortWrite,
            DiskFault::BitFlip,
            DiskFault::ZeroRange,
        ]
        .into_iter()
        .enumerate()
        {
            let payload: Vec<u8> = (0..1024u32).map(|v| (v % 250 + 1) as u8).collect();
            let path = tmp_file(&format!("kind-{i}"), &payload);
            let c = DiskFaultPlan::new(7 + i as u64)
                .inject_kind(&path, kind)
                .unwrap();
            assert!(c.len > 0, "{kind:?} reported a no-op");
            assert_ne!(
                fs::read(&path).unwrap(),
                payload,
                "{kind:?} changed nothing"
            );
            fs::remove_file(path).unwrap();
        }
    }

    #[test]
    fn empty_file_is_a_reported_noop() {
        let path = tmp_file("empty", b"");
        let c = DiskFaultPlan::new(1).inject(&path).unwrap();
        assert_eq!(c.len, 0);
        fs::remove_file(path).unwrap();
    }
}
