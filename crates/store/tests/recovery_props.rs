//! Recovery properties of the segmented log (DESIGN.md §15):
//!
//! * **Prefix**: for any seeded write sequence damaged at any byte offset
//!   — torn write, short write, bit flip, or zeroed page — recovery
//!   yields exactly the latest-wins view of a *prefix* of the committed
//!   records. Nothing reordered, nothing invented.
//! * **Quarantine**: no recovered entry ever differs from what was
//!   written — corrupt records are counted and truncated, never served.
//! * **Idempotence**: recovery repairs the log in place, so a second
//!   recovery is clean (zero torn, zero quarantined) and returns the same
//!   entries.
//!
//! The exhaustive test drives the torn-write case at *every* byte offset
//! of a small log; the property tests sample the full fault plan over
//! seeded write sequences, including multi-segment logs with rotation and
//! compaction in play.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;

use gcomm_store::fault::DiskFaultPlan;
use gcomm_store::{segment_files, FsyncPolicy, Store, StoreConfig};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gcomm-store-props-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// One segment only: every write lands in seg-000001.
fn single_segment_cfg() -> StoreConfig {
    StoreConfig {
        segment_bytes: u64::MAX,
        fsync: FsyncPolicy::Off,
        max_record_bytes: 1 << 20,
    }
}

/// Tiny segments: rotation and compaction fire constantly.
fn churny_cfg() -> StoreConfig {
    StoreConfig {
        segment_bytes: 192,
        fsync: FsyncPolicy::Interval(4),
        max_record_bytes: 1 << 20,
    }
}

type Write = (usize, Vec<u8>);

fn key_bytes(k: usize) -> Vec<u8> {
    format!("key-{k:02}").into_bytes()
}

/// Latest-wins view of a write prefix, ordered by last write — the exact
/// contract of `Recovery::entries`.
fn expected_entries(writes: &[Write]) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut slot: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut out: Vec<Option<(Vec<u8>, Vec<u8>)>> = Vec::new();
    for (k, v) in writes {
        let key = key_bytes(*k);
        if let Some(&i) = slot.get(&key) {
            out[i] = None;
        }
        slot.insert(key.clone(), out.len());
        out.push(Some((key, v.clone())));
    }
    out.into_iter().flatten().collect()
}

fn run_writes(dir: &Path, cfg: StoreConfig, writes: &[Write]) {
    let (mut store, rec) = Store::open(dir, cfg).unwrap();
    assert_eq!(rec.records_ok, 0, "fresh dir must recover empty");
    for (k, v) in writes {
        store.append(&key_bytes(*k), v).unwrap();
    }
}

fn any_writes() -> impl Strategy<Value = Vec<Write>> {
    prop::collection::vec(
        (0usize..8, prop::collection::vec(1u8..=255u8, 1..48)),
        1..40,
    )
}

/// Torn write at EVERY byte offset of a fixed small log: recovery always
/// yields a latest-wins prefix and repairs in place.
#[test]
fn truncation_at_every_offset_recovers_a_prefix() {
    let base = tmp_dir("every-offset-base");
    let writes: Vec<Write> = (0..6).map(|i| (i % 3, vec![0xA0 + i as u8; 10])).collect();
    run_writes(&base, single_segment_cfg(), &writes);
    let seg = segment_files(&base).unwrap().pop().unwrap();
    let full = fs::read(&seg).unwrap();

    let dir = tmp_dir("every-offset");
    for cut in 0..=full.len() {
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(seg.file_name().unwrap()), &full[..cut]).unwrap();

        let (store, rec) = Store::open(&dir, single_segment_cfg()).unwrap();
        let n = rec.records_ok as usize;
        assert!(n <= writes.len(), "cut {cut}: more records than written");
        assert_eq!(
            rec.entries,
            expected_entries(&writes[..n]),
            "cut {cut}: recovered set is not the {n}-record prefix"
        );
        assert_eq!(
            rec.quarantined, 0,
            "cut {cut}: truncation never quarantines"
        );
        drop(store);

        let (_s2, rec2) = Store::open(&dir, single_segment_cfg()).unwrap();
        assert_eq!((rec2.torn, rec2.quarantined), (0, 0), "cut {cut}: repaired");
        assert_eq!(
            rec2.entries, rec.entries,
            "cut {cut}: second recovery drifted"
        );
    }
    fs::remove_dir_all(&base).unwrap();
    fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any fault from the disk plan against a single-segment log: the
    /// recovered entries are exactly the latest-wins view of a prefix of
    /// the committed writes, and a second recovery is clean and equal.
    #[test]
    fn any_fault_recovers_a_committed_prefix(
        writes in any_writes(),
        seed in 0u64..1_000_000,
    ) {
        let dir = tmp_dir("fault-prefix");
        run_writes(&dir, single_segment_cfg(), &writes);
        let seg = segment_files(&dir).unwrap().pop().unwrap();
        DiskFaultPlan::new(seed).inject(&seg).unwrap();

        let (store, rec) = Store::open(&dir, single_segment_cfg()).unwrap();
        let n = rec.records_ok as usize;
        prop_assert!(n <= writes.len(), "recovered more records than committed");
        prop_assert_eq!(
            &rec.entries,
            &expected_entries(&writes[..n]),
            "recovered entries are not a committed prefix (seed {})", seed
        );
        drop(store);

        let (_s2, rec2) = Store::open(&dir, single_segment_cfg()).unwrap();
        prop_assert_eq!((rec2.torn, rec2.quarantined), (0, 0), "not repaired in place");
        prop_assert_eq!(&rec2.entries, &rec.entries, "second recovery not idempotent");
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Multi-segment log under rotation and compaction, fault injected
    /// into an arbitrary segment: quarantine-never-serve still holds —
    /// every recovered value is one this key was actually written with —
    /// and recovery still repairs in place.
    #[test]
    fn segmented_log_never_serves_uncommitted_bytes(
        writes in any_writes(),
        seed in 0u64..1_000_000,
    ) {
        let dir = tmp_dir("fault-segmented");
        run_writes(&dir, churny_cfg(), &writes);
        let segs = segment_files(&dir).unwrap();
        let mut plan = DiskFaultPlan::new(seed);
        let target = plan.next_pick(segs.len());
        plan.inject(&segs[target]).unwrap();

        let (store, rec) = Store::open(&dir, churny_cfg()).unwrap();
        let mut written: HashMap<Vec<u8>, Vec<Vec<u8>>> = HashMap::new();
        for (k, v) in &writes {
            written.entry(key_bytes(*k)).or_default().push(v.clone());
        }
        for (key, value) in &rec.entries {
            let known = written.get(key);
            prop_assert!(
                known.is_some_and(|vs| vs.contains(value)),
                "recovered a value never written for {:?} (seed {})", key, seed
            );
        }
        drop(store);

        let (_s2, rec2) = Store::open(&dir, churny_cfg()).unwrap();
        prop_assert_eq!((rec2.torn, rec2.quarantined), (0, 0), "not repaired in place");
        prop_assert_eq!(&rec2.entries, &rec.entries, "second recovery not idempotent");
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A log that was never damaged recovers everything: full latest-wins
    /// set, zero torn, zero quarantined — under both segment regimes.
    #[test]
    fn undamaged_log_recovers_everything(
        writes in any_writes(),
        churny in 0usize..2,
    ) {
        let cfg = if churny == 1 { churny_cfg() } else { single_segment_cfg() };
        let dir = tmp_dir("clean");
        run_writes(&dir, cfg.clone(), &writes);
        let (_s, rec) = Store::open(&dir, cfg).unwrap();
        prop_assert_eq!((rec.torn, rec.quarantined), (0, 0));
        let mut want = expected_entries(&writes);
        let mut got = rec.entries;
        want.sort();
        got.sort();
        prop_assert_eq!(got, want, "live set must survive rotation + compaction");
        fs::remove_dir_all(&dir).unwrap();
    }
}
