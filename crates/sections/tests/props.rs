//! Property-based tests for the section algebra: the subsumption and
//! combining machinery of §4.6–4.7 rests on these laws.

use proptest::prelude::*;

use gcomm_ir::{Affine, ParamId, Var};
use gcomm_sections::{DimSect, Section, SymCtx};

/// Random affine bound over one size parameter: `c·n + k` with small
/// coefficients (the shapes stencil codes produce).
fn bound() -> impl Strategy<Value = Affine> {
    (0i64..=1, -4i64..=4).prop_map(|(c, k)| {
        if c == 0 {
            Affine::constant(k.rem_euclid(8) + 1)
        } else {
            Affine::new(k, [(Var::Param(ParamId(0)), c)])
        }
    })
}

fn dim() -> impl Strategy<Value = DimSect> {
    (bound(), 0i64..=3, prop::sample::select(vec![1i64, 1, 1, 2])).prop_map(|(lo, span, step)| {
        DimSect::Range {
            hi: lo.offset(span * step),
            lo,
            step,
        }
    })
}

fn section() -> impl Strategy<Value = Section> {
    prop::collection::vec(dim(), 1..3).prop_map(Section::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Subset is reflexive.
    #[test]
    fn subset_reflexive(s in section()) {
        let ctx = SymCtx::default();
        prop_assert!(s.subset_of(&s, &ctx));
    }

    /// Subset is transitive (on provable instances).
    #[test]
    fn subset_transitive(a in section(), b in section(), c in section()) {
        let ctx = SymCtx::default();
        if a.subset_of(&b, &ctx) && b.subset_of(&c, &ctx) {
            prop_assert!(a.subset_of(&c, &ctx));
        }
    }

    /// A provable subset always overlaps (non-emptiness of our ranges).
    #[test]
    fn subset_implies_overlap(a in section(), b in section()) {
        let ctx = SymCtx::default();
        if a.subset_of(&b, &ctx) {
            prop_assert!(a.overlaps(&b, &ctx));
        }
    }

    /// The union bounding box covers both operands and is commutative in
    /// coverage.
    #[test]
    fn union_covers_operands(a in section(), b in section()) {
        let ctx = SymCtx::default();
        if let Some(u) = a.union_bbox(&b, &ctx) {
            prop_assert!(a.subset_of(&u, &ctx), "a ⊄ a∪b: {a:?} {b:?} {u:?}");
            prop_assert!(b.subset_of(&u, &ctx), "b ⊄ a∪b: {a:?} {b:?} {u:?}");
        }
        if let (Some(u1), Some(u2)) = (a.union_bbox(&b, &ctx), b.union_bbox(&a, &ctx)) {
            prop_assert!(u1.subset_of(&u2, &ctx) && u2.subset_of(&u1, &ctx));
        }
    }

    /// Union with a superset is the superset (absorption).
    #[test]
    fn union_absorption(a in section(), b in section()) {
        let ctx = SymCtx::default();
        if a.subset_of(&b, &ctx) {
            let u = a.union_bbox(&b, &ctx).expect("subset pairs always union");
            prop_assert!(u.subset_of(&b, &ctx) && b.subset_of(&u, &ctx));
        }
    }

    /// Counting respects subset at concrete sizes.
    #[test]
    fn count_monotone_under_subset(a in section(), b in section(), n in 6i64..=24) {
        let ctx = SymCtx::default();
        let bind = |v: Var| match v {
            Var::Param(_) => Some(n),
            Var::Loop(_) => None,
        };
        if a.subset_of(&b, &ctx) {
            if let (Some(ca), Some(cb)) = (a.count(&bind), b.count(&bind)) {
                prop_assert!(ca <= cb, "count({a:?})={ca} > count({b:?})={cb} at n={n}");
            }
        }
    }

    /// Provably-disjoint sections never share a concrete element.
    #[test]
    fn disjointness_is_sound(a in section(), b in section(), n in 6i64..=16) {
        let ctx = SymCtx::default();
        if a.rank() != b.rank() || a.overlaps(&b, &ctx) {
            return Ok(());
        }
        // Enumerate both at a concrete size and intersect.
        let bind = |v: Var| match v {
            Var::Param(_) => Some(n),
            Var::Loop(_) => None,
        };
        let enumerate = |s: &Section| -> Option<Vec<Vec<i64>>> {
            let mut dims = Vec::new();
            for d in &s.dims {
                let lo = d.lo()?.eval(&bind)?;
                let hi = d.hi()?.eval(&bind)?;
                let st = d.step()?;
                let mut v = Vec::new();
                let mut i = lo;
                while i <= hi {
                    v.push(i);
                    i += st;
                }
                dims.push(v);
            }
            let mut out: Vec<Vec<i64>> = vec![Vec::new()];
            for d in &dims {
                let mut next = Vec::new();
                for pre in &out {
                    for &x in d {
                        let mut e = pre.clone();
                        e.push(x);
                        next.push(e);
                    }
                }
                out = next;
            }
            Some(out)
        };
        if let (Some(ea), Some(eb)) = (enumerate(&a), enumerate(&b)) {
            for x in &ea {
                prop_assert!(!eb.contains(x),
                    "claimed disjoint but share {x:?}: {a:?} vs {b:?} at n={n}");
            }
        }
    }

    /// `same_shape` is an equivalence on provable instances and subset in
    /// both directions implies same shape for unit strides.
    #[test]
    fn same_shape_symmetric(a in section(), b in section()) {
        prop_assert_eq!(a.same_shape(&b), b.same_shape(&a));
        prop_assert!(a.same_shape(&a));
    }
}
