//! Available Section Descriptors: `(D, M)` pairs (§4.6).

use gcomm_ir::ArrayId;

use crate::mapping::Mapping;
use crate::section::Section;
use crate::symcmp::SymCtx;

/// An Available Section Descriptor: the data `D` (an array section) together
/// with the mapping `M` describing which processors receive it.
///
/// A communication `(D1, M1)` is made redundant by `(D2, M2)` when
/// `D1 ⊆ D2` and `M1(D1) ⊆ M2(D1)` — see [`Asd::subsumed_by`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Asd {
    /// The array whose data is communicated.
    pub array: ArrayId,
    /// The communicated section of that array.
    pub section: Section,
    /// The sender→receiver mapping.
    pub mapping: Mapping,
}

impl Asd {
    /// Creates a descriptor.
    pub fn new(array: ArrayId, section: Section, mapping: Mapping) -> Self {
        gcomm_obs::count("sections.asd_built", 1);
        Asd {
            array,
            section,
            mapping,
        }
    }

    /// True if communication described by `self` is made redundant by a
    /// communication described by `other` having already happened:
    /// same array, `self.section ⊆ other.section`, and `self`'s mapping a
    /// subset of `other`'s.
    pub fn subsumed_by(&self, other: &Asd, ctx: &SymCtx) -> bool {
        let _t = gcomm_obs::time("sections.subsume");
        gcomm_obs::count("sections.subsume_checks", 1);
        self.array == other.array
            && self.mapping.subset_of(&other.mapping)
            && self.section.subset_of(&other.section, ctx)
    }

    /// True if the two descriptors describe byte-identical communication.
    pub fn same_comm(&self, other: &Asd) -> bool {
        self == other
    }

    /// Budgeted [`subsumed_by`](Self::subsumed_by): charges steps
    /// proportional to the section rank, and answers `false` (not
    /// subsumed) once the budget is exhausted. A `false` only ever *skips*
    /// a redundancy-elimination opportunity — the communication is kept —
    /// so degraded answers are always legal; callers must never use this
    /// to *validate* a previously recorded absorption.
    pub fn subsumed_by_within(
        &self,
        other: &Asd,
        ctx: &SymCtx,
        budget: &gcomm_guard::Budget,
    ) -> bool {
        if budget.exhausted() {
            gcomm_obs::count("sections.degraded.subsume", 1);
            return false;
        }
        let r = {
            let _t = gcomm_obs::time("sections.subsume");
            gcomm_obs::count("sections.subsume_checks", 1);
            self.array == other.array
                && self.mapping.subset_of(&other.mapping)
                && self.section.subset_of_within(&other.section, ctx, budget)
        };
        // The budget may run out mid-check; a `false` reached that way may
        // be conservative rather than proven, so report it as degraded.
        if !r && budget.exhausted() {
            gcomm_obs::count("sections.degraded.subsume", 1);
        }
        r
    }

    /// Memoizing [`subsumed_by_within`](Self::subsumed_by_within): the
    /// section-subset leg (the expensive symbolic part) is answered from
    /// `alg`'s memo table, keyed on the pre-interned ids of the two
    /// sections. Same degradation contract — a `false` under an exhausted
    /// budget may be conservative and is reported as degraded, and the
    /// memo never caches such answers.
    pub fn subsumed_by_memo(
        &self,
        self_sect: crate::intern::SectId,
        other: &Asd,
        other_sect: crate::intern::SectId,
        alg: &crate::intern::SectionAlgebra,
        ctx: &SymCtx,
        budget: &gcomm_guard::Budget,
    ) -> bool {
        if budget.exhausted() {
            gcomm_obs::count("sections.degraded.subsume", 1);
            return false;
        }
        let r = {
            let _t = gcomm_obs::time("sections.subsume");
            gcomm_obs::count("sections.subsume_checks", 1);
            self.array == other.array
                && self.mapping.subset_of(&other.mapping)
                && alg.subset_of_within(
                    &self.section,
                    self_sect,
                    &other.section,
                    other_sect,
                    ctx,
                    budget,
                )
        };
        if !r && budget.exhausted() {
            gcomm_obs::count("sections.degraded.subsume", 1);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::section::DimSect;
    use gcomm_ir::{Affine, ParamId, Var};

    fn n() -> Affine {
        Affine::var(Var::Param(ParamId(0)))
    }
    fn sect(lo: i64, hi_off: i64) -> Section {
        Section::new(vec![DimSect::Range {
            lo: Affine::constant(lo),
            hi: n().offset(hi_off),
            step: 1,
        }])
    }

    #[test]
    fn subsumption_requires_section_subset() {
        let ctx = SymCtx::default();
        let m = Mapping::Shift { offsets: vec![1] };
        let small = Asd::new(ArrayId(0), sect(2, -1), m.clone());
        let big = Asd::new(ArrayId(0), sect(1, 0), m.clone());
        assert!(small.subsumed_by(&big, &ctx));
        assert!(!big.subsumed_by(&small, &ctx));
    }

    #[test]
    fn subsumption_requires_same_array_and_mapping() {
        let ctx = SymCtx::default();
        let m1 = Mapping::Shift { offsets: vec![1] };
        let m2 = Mapping::Shift { offsets: vec![-1] };
        let a = Asd::new(ArrayId(0), sect(1, 0), m1.clone());
        let b = Asd::new(ArrayId(1), sect(1, 0), m1.clone());
        let c = Asd::new(ArrayId(0), sect(1, 0), m2);
        assert!(!a.subsumed_by(&b, &ctx));
        assert!(!a.subsumed_by(&c, &ctx));
        assert!(a.subsumed_by(&a.clone(), &ctx));
    }
}
