//! # gcomm-sections — symbolic array sections, mappings, and ASDs
//!
//! The redundancy-elimination and message-combining analyses of *Global
//! Communication Analysis and Optimization* (PLDI 1996) operate on
//! **Available Section Descriptors** (ASDs, §4.6, after Gupta–Schonberg–
//! Srinivasan): a pair `(D, M)` of the *data* being communicated (an array
//! section) and the *mapping* describing which processors receive it.
//!
//! This crate provides:
//!
//! * [`symcmp`] — provable comparisons between affine bounds under the
//!   standard compiler assumption that size parameters are "large enough",
//! * [`section`] — regular sections (`lo:hi:step` per dimension) with
//!   subset, overlap, union-bounding-box, shape, and size operations,
//! * [`mapping`] — communication mappings: local, template-space shifts
//!   (nearest-neighbour when all offsets are within ±1), reductions,
//!   broadcasts, gathers to a constant processor, and opaque patterns,
//! * [`asd`] — the `(D, M)` descriptor with the paper's subsumption test
//!   `D1 ⊆ D2 ∧ M1(D1) ⊆ M2(D1)`.

pub mod asd;
pub mod intern;
pub mod mapping;
pub mod section;
pub mod symcmp;

pub use asd::Asd;
pub use intern::{SectId, SectionAlgebra};
pub use mapping::{Mapping, ReduceOp};
pub use section::{DimSect, Section};
pub use symcmp::SymCtx;
