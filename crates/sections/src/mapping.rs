//! Communication mappings: the `M` of an ASD `(D, M)`.
//!
//! A mapping describes the sender→receiver relationship of a communication
//! in the space of the processor grid (HPF template). Two communications can
//! be *combined* (§4.7) only when their mappings are identical or one is a
//! subset of the other, so that all but one message startup is saved.

use std::fmt;

/// Reduction operators supported by `sum(...)`-style communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Global addition.
    Sum,
}

impl fmt::Display for ReduceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReduceOp::Sum => write!(f, "sum"),
        }
    }
}

/// The sender→receiver relationship of one communication.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Mapping {
    /// Data is already local; no communication needed.
    Local,
    /// Template-space shift: every processor sends a boundary slab to the
    /// neighbour at `offsets` (one entry per grid axis). Nearest-neighbour
    /// communication (NNC) when every offset is within ±1.
    Shift {
        /// Per-grid-axis offset in processors.
        offsets: Vec<i64>,
    },
    /// Reduction of per-processor partial results to all processors.
    Reduction {
        /// Combining operator.
        op: ReduceOp,
    },
    /// One owner sends to all processors.
    Broadcast,
    /// All owners send to the single processor owning a constant position.
    ToConstant,
    /// An opaque many-to-many pattern; equal only to itself.
    General(u32),
}

impl Mapping {
    /// True for a nearest-neighbour shift (all offsets within ±1, not all
    /// zero).
    pub fn is_nnc(&self) -> bool {
        match self {
            Mapping::Shift { offsets } => {
                offsets.iter().any(|&o| o != 0) && offsets.iter().all(|&o| o.abs() <= 1)
            }
            _ => false,
        }
    }

    /// True if this mapping is a reduction.
    pub fn is_reduction(&self) -> bool {
        matches!(self, Mapping::Reduction { .. })
    }

    /// True when `self`'s sender→receiver pairs are a subset of `other`'s
    /// (the `M1 ⊆ M2` half of the paper's compatibility test). For the
    /// closed-form mappings this degenerates to equality, except that
    /// `Local` is a subset of everything.
    pub fn subset_of(&self, other: &Mapping) -> bool {
        if self == other {
            return true;
        }
        matches!(self, Mapping::Local)
    }

    /// True if two mappings may be combined into one message: identical, or
    /// one a subset of the other (§4.7: `M1 = M2 ∨ M1 ⊆ M2`).
    pub fn compatible(&self, other: &Mapping) -> bool {
        self.subset_of(other) || other.subset_of(self)
    }

    /// The number of distinct communication partners each processor has
    /// under this mapping on a grid with `nproc` processors (used by the
    /// §6.1 cost model).
    pub fn partners(&self, nproc: u64) -> u64 {
        match self {
            Mapping::Local => 0,
            Mapping::Shift { .. } => 1,
            // Tree-based reduction/broadcast: log2(P) rounds, one partner
            // per round.
            Mapping::Reduction { .. } | Mapping::Broadcast => {
                (64 - (nproc.max(1) - 1).leading_zeros()) as u64
            }
            Mapping::ToConstant => 1,
            Mapping::General(_) => nproc.saturating_sub(1),
        }
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mapping::Local => write!(f, "local"),
            Mapping::Shift { offsets } => {
                write!(f, "shift(")?;
                for (i, o) in offsets.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{o:+}")?;
                }
                write!(f, ")")
            }
            Mapping::Reduction { op } => write!(f, "reduce({op})"),
            Mapping::Broadcast => write!(f, "bcast"),
            Mapping::ToConstant => write!(f, "gather"),
            Mapping::General(id) => write!(f, "general#{id}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nnc_detection() {
        assert!(Mapping::Shift {
            offsets: vec![0, 1]
        }
        .is_nnc());
        assert!(Mapping::Shift {
            offsets: vec![-1, 1]
        }
        .is_nnc());
        assert!(!Mapping::Shift {
            offsets: vec![0, 0]
        }
        .is_nnc());
        assert!(!Mapping::Shift {
            offsets: vec![2, 0]
        }
        .is_nnc());
        assert!(!Mapping::Local.is_nnc());
    }

    #[test]
    fn compatibility_rules() {
        let e = Mapping::Shift {
            offsets: vec![0, 1],
        };
        let w = Mapping::Shift {
            offsets: vec![0, -1],
        };
        assert!(e.compatible(&e.clone()));
        assert!(!e.compatible(&w), "opposite shifts are separate messages");
        assert!(Mapping::Local.compatible(&e));
        let r = Mapping::Reduction { op: ReduceOp::Sum };
        assert!(r.compatible(&r.clone()));
        assert!(!r.compatible(&e));
        assert!(!Mapping::General(1).compatible(&Mapping::General(2)));
    }

    #[test]
    fn partner_counts() {
        let shift = Mapping::Shift {
            offsets: vec![1, 0],
        };
        assert_eq!(shift.partners(25), 1);
        let red = Mapping::Reduction { op: ReduceOp::Sum };
        assert_eq!(red.partners(8), 3);
        assert_eq!(red.partners(25), 5); // ceil(log2 25)
        assert_eq!(Mapping::Local.partners(25), 0);
        assert_eq!(Mapping::General(0).partners(25), 24);
    }

    #[test]
    fn display_nonempty() {
        for m in [
            Mapping::Local,
            Mapping::Shift {
                offsets: vec![1, -1],
            },
            Mapping::Reduction { op: ReduceOp::Sum },
            Mapping::Broadcast,
            Mapping::ToConstant,
            Mapping::General(3),
        ] {
            assert!(!m.to_string().is_empty());
        }
    }
}
