//! Regular array sections with symbolic affine bounds.

use gcomm_ir::{Affine, Var};

use crate::symcmp::SymCtx;

/// One dimension of a section.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DimSect {
    /// A single element.
    Elem(Affine),
    /// A regular range `lo : hi : step` (inclusive bounds, constant stride).
    Range {
        /// Inclusive lower bound.
        lo: Affine,
        /// Inclusive upper bound.
        hi: Affine,
        /// Constant positive stride.
        step: i64,
    },
    /// Unknown extent (non-affine subscript); treated conservatively.
    Any,
}

impl DimSect {
    /// Lower bound, if known.
    pub fn lo(&self) -> Option<&Affine> {
        match self {
            DimSect::Elem(e) => Some(e),
            DimSect::Range { lo, .. } => Some(lo),
            DimSect::Any => None,
        }
    }

    /// Upper bound, if known.
    pub fn hi(&self) -> Option<&Affine> {
        match self {
            DimSect::Elem(e) => Some(e),
            DimSect::Range { hi, .. } => Some(hi),
            DimSect::Any => None,
        }
    }

    /// Stride (1 for elements, `None` for unknown).
    pub fn step(&self) -> Option<i64> {
        match self {
            DimSect::Elem(_) => Some(1),
            DimSect::Range { step, .. } => Some(*step),
            DimSect::Any => None,
        }
    }

    /// Residual of `self` after removing `other`, when expressible as a
    /// single regular dimension (`None` otherwise; `Some(None)` would be
    /// ambiguous, so an exactly-covered dimension returns an empty range
    /// `lo..lo-1`).
    ///
    /// Handles the two shapes partial redundancy elimination needs:
    /// one-sided bound trims (`2:n` minus `2:n-1` → `n:n`) and stride
    /// complements (`1:n` minus `1:n:2` → `2:n:2`).
    pub fn subtract(&self, other: &DimSect, ctx: &SymCtx) -> Option<DimSect> {
        if self.subset_of(other, ctx) {
            // Fully covered: empty residual.
            let lo = self.lo()?.clone();
            return Some(DimSect::Range {
                hi: lo.offset(-1),
                lo,
                step: 1,
            });
        }
        let (slo, shi, sst) = (self.lo()?, self.hi()?, self.step()?);
        let (olo, ohi, ost) = (other.lo()?, other.hi()?, other.step()?);
        // Stride complement: dense minus every-other with shared span.
        if sst == 1 && ost == 2 && ctx.eq(slo, olo) && ctx.le(shi, ohi) {
            return Some(DimSect::Range {
                lo: slo.offset(1),
                hi: shi.clone(),
                step: 2,
            });
        }
        if ost != 1 || sst != 1 {
            return None;
        }
        // One-sided trims.
        let covers_low = ctx.le(olo, slo);
        let covers_high = ctx.ge(ohi, shi);
        match (covers_low, covers_high) {
            (true, false) if ctx.le(slo, ohi) => Some(DimSect::Range {
                lo: ohi.offset(1),
                hi: shi.clone(),
                step: 1,
            }),
            (false, true) if ctx.le(olo, shi) => Some(DimSect::Range {
                lo: slo.clone(),
                hi: olo.offset(-1),
                step: 1,
            }),
            _ => None,
        }
    }

    /// Number of elements covered, as a symbolic expression (`None` for
    /// unknown dimensions or non-unit strides whose extent is not exactly
    /// divisible — callers then fall back to numeric evaluation).
    pub fn extent(&self) -> Option<Affine> {
        match self {
            DimSect::Elem(_) => Some(Affine::constant(1)),
            DimSect::Range { lo, hi, step } => {
                let span = hi.sub(lo).offset(1);
                if *step == 1 {
                    Some(span)
                } else {
                    // (hi - lo) / step + 1 is affine only when the numerator
                    // coefficients divide evenly; handle the constant case.
                    let d = hi.sub(lo);
                    d.as_const().map(|k| Affine::constant(k / *step + 1))
                }
            }
            DimSect::Any => None,
        }
    }

    /// True if `self ⊆ other` provably.
    pub fn subset_of(&self, other: &DimSect, ctx: &SymCtx) -> bool {
        if self == other {
            return true;
        }
        let (Some(slo), Some(shi), Some(sst)) = (self.lo(), self.hi(), self.step()) else {
            return false;
        };
        let (Some(olo), Some(ohi), Some(ost)) = (other.lo(), other.hi(), other.step()) else {
            return false;
        };
        if !(ctx.le(olo, slo) && ctx.le(shi, ohi)) {
            return false;
        }
        if ost == 1 {
            return true;
        }
        // Strided superset: same stride and provably congruent start.
        sst == ost && slo.sub(olo).as_const().is_some_and(|d| d % ost == 0)
    }

    /// True unless the dimensions are provably disjoint (stride-blind).
    pub fn overlaps(&self, other: &DimSect, ctx: &SymCtx) -> bool {
        let (Some(slo), Some(shi)) = (self.lo(), self.hi()) else {
            return true;
        };
        let (Some(olo), Some(ohi)) = (other.lo(), other.hi()) else {
            return true;
        };
        // Disjoint iff shi < olo or ohi < slo (provably).
        if ctx.lt(shi, olo) || ctx.lt(ohi, slo) {
            return false;
        }
        // Equal strides with provably different phase are disjoint
        // (e.g. 1:n:2 vs 2:n:2).
        if let (Some(a), Some(b)) = (self.step(), other.step()) {
            if a == b && a > 1 {
                if let (Some(l1), Some(l2)) = (self.lo(), other.lo()) {
                    if let Some(d) = l1.sub(l2).as_const() {
                        if d.rem_euclid(a) != 0 {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Smallest regular dimension containing both (`None` when bounds are
    /// incomparable).
    pub fn union_bbox(&self, other: &DimSect, ctx: &SymCtx) -> Option<DimSect> {
        if self.subset_of(other, ctx) {
            return Some(other.clone());
        }
        if other.subset_of(self, ctx) {
            return Some(self.clone());
        }
        let (slo, shi) = (self.lo()?, self.hi()?);
        let (olo, ohi) = (other.lo()?, other.hi()?);
        let lo = if ctx.le(slo, olo) {
            slo.clone()
        } else if ctx.le(olo, slo) {
            olo.clone()
        } else {
            return None;
        };
        let hi = if ctx.ge(shi, ohi) {
            shi.clone()
        } else if ctx.ge(ohi, shi) {
            ohi.clone()
        } else {
            return None;
        };
        let step = match (self.step()?, other.step()?) {
            (a, b) if a == b => {
                // Keep the stride only when the phases provably agree.
                let same_phase = slo
                    .sub(olo)
                    .as_const()
                    .is_some_and(|d| d.rem_euclid(a) == 0);
                if same_phase {
                    a
                } else {
                    1
                }
            }
            _ => 1,
        };
        Some(DimSect::Range { lo, hi, step })
    }

    /// Number of elements for concrete variable bindings.
    pub fn count(&self, bind: &dyn Fn(Var) -> Option<i64>) -> Option<u64> {
        let lo = self.lo()?.eval(bind)?;
        let hi = self.hi()?.eval(bind)?;
        let step = self.step()?;
        if hi < lo {
            return Some(0);
        }
        Some(((hi - lo) / step + 1) as u64)
    }
}

/// A multi-dimensional regular section (one [`DimSect`] per array
/// dimension; scalars have rank 0).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Section {
    /// Per-dimension extents.
    pub dims: Vec<DimSect>,
}

impl Section {
    /// Builds a section from dimensions.
    pub fn new(dims: Vec<DimSect>) -> Self {
        Section { dims }
    }

    /// The rank-0 (scalar) section.
    pub fn scalar() -> Self {
        Section { dims: Vec::new() }
    }

    /// Rank of the section.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// True if `self ⊆ other` provably (requires equal rank).
    pub fn subset_of(&self, other: &Section, ctx: &SymCtx) -> bool {
        self.rank() == other.rank()
            && self
                .dims
                .iter()
                .zip(&other.dims)
                .all(|(a, b)| a.subset_of(b, ctx))
    }

    /// Budgeted [`subset_of`](Self::subset_of): charges one step per
    /// dimension and answers `false` (not provably a subset — the
    /// conservative direction for redundancy elimination) once the budget
    /// is exhausted.
    pub fn subset_of_within(
        &self,
        other: &Section,
        ctx: &SymCtx,
        budget: &gcomm_guard::Budget,
    ) -> bool {
        if !budget.charge(1 + self.rank() as u64) {
            return false;
        }
        self.subset_of(other, ctx)
    }

    /// True unless provably disjoint. Sections of different rank never
    /// overlap (different arrays are compared elsewhere by identity).
    pub fn overlaps(&self, other: &Section, ctx: &SymCtx) -> bool {
        self.rank() == other.rank()
            && self
                .dims
                .iter()
                .zip(&other.dims)
                .all(|(a, b)| a.overlaps(b, ctx))
    }

    /// Bounding-box union (`None` when ranks differ or bounds are
    /// incomparable in some dimension).
    pub fn union_bbox(&self, other: &Section, ctx: &SymCtx) -> Option<Section> {
        if self.rank() != other.rank() {
            return None;
        }
        let dims = self
            .dims
            .iter()
            .zip(&other.dims)
            .map(|(a, b)| a.union_bbox(b, ctx))
            .collect::<Option<Vec<_>>>()?;
        Some(Section { dims })
    }

    /// Per-dimension symbolic extents (`None` entries for unknown dims).
    pub fn shape(&self) -> Vec<Option<Affine>> {
        self.dims.iter().map(|d| d.extent()).collect()
    }

    /// True if the two sections have identical symbolic shape (same rank and
    /// structurally equal extents). This is the "identical sections" check
    /// used when combining data for *different* arrays under one descriptor.
    pub fn same_shape(&self, other: &Section) -> bool {
        self.rank() == other.rank()
            && self
                .shape()
                .iter()
                .zip(other.shape().iter())
                .all(|(a, b)| matches!((a, b), (Some(x), Some(y)) if x == y))
    }

    /// Residual of `self` after removing `other` (partial redundancy
    /// elimination, paper §7): expressible as a single section only when
    /// exactly one dimension has a non-empty residual and every other
    /// dimension of `self` is covered by `other`.
    pub fn subtract(&self, other: &Section, ctx: &SymCtx) -> Option<Section> {
        if self.rank() != other.rank() {
            return None;
        }
        let mut residual_dim: Option<usize> = None;
        for (d, (a, b)) in self.dims.iter().zip(&other.dims).enumerate() {
            if a.subset_of(b, ctx) {
                continue;
            }
            if residual_dim.is_some() {
                return None; // residual would be an L-shape
            }
            residual_dim = Some(d);
        }
        let Some(rd) = residual_dim else {
            // Fully covered: canonical empty section — the first dimension
            // becomes the empty range `lo : lo-1` (an `Any` first dimension
            // has no bound to anchor the empty range, so the residual is
            // inexpressible). This is what `first.subtract(first)` used to
            // spell via the fully-covered case; constructed directly now.
            let mut dims = self.dims.clone();
            if let Some(first) = dims.first_mut() {
                let lo = first.lo()?.clone();
                *first = DimSect::Range {
                    hi: lo.offset(-1),
                    lo,
                    step: 1,
                };
            }
            return Some(Section::new(dims));
        };
        let res = self.dims[rd].subtract(&other.dims[rd], ctx)?;
        let mut dims = self.dims.clone();
        dims[rd] = res;
        Some(Section::new(dims))
    }

    /// Total element count for concrete bindings (1 for scalars).
    pub fn count(&self, bind: &dyn Fn(Var) -> Option<i64>) -> Option<u64> {
        let mut total: u64 = 1;
        for d in &self.dims {
            total = total.checked_mul(d.count(bind)?)?;
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcomm_ir::ParamId;

    fn n() -> Affine {
        Affine::var(Var::Param(ParamId(0)))
    }
    fn c(k: i64) -> Affine {
        Affine::constant(k)
    }
    fn rng(lo: Affine, hi: Affine) -> DimSect {
        DimSect::Range { lo, hi, step: 1 }
    }

    #[test]
    fn subset_basic() {
        let ctx = SymCtx::default();
        let inner = rng(c(2), n().offset(-1)); // 2 : n-1
        let outer = rng(c(1), n()); // 1 : n
        assert!(inner.subset_of(&outer, &ctx));
        assert!(!outer.subset_of(&inner, &ctx));
        assert!(inner.subset_of(&inner, &ctx));
    }

    #[test]
    fn strided_subset_needs_alignment() {
        let ctx = SymCtx::default();
        let odd = DimSect::Range {
            lo: c(1),
            hi: n(),
            step: 2,
        };
        let even = DimSect::Range {
            lo: c(2),
            hi: n(),
            step: 2,
        };
        let full = rng(c(1), n());
        assert!(odd.subset_of(&full, &ctx));
        assert!(!odd.subset_of(&even, &ctx));
        assert!(!full.subset_of(&odd, &ctx));
    }

    #[test]
    fn overlap_and_disjoint() {
        let ctx = SymCtx::default();
        let a = rng(c(1), c(4));
        let b = rng(c(5), c(9));
        assert!(!a.overlaps(&b, &ctx));
        let d = rng(c(4), c(6));
        assert!(a.overlaps(&d, &ctx));
        // Odd/even interleave is disjoint.
        let odd = DimSect::Range {
            lo: c(1),
            hi: n(),
            step: 2,
        };
        let even = DimSect::Range {
            lo: c(2),
            hi: n(),
            step: 2,
        };
        assert!(!odd.overlaps(&even, &ctx));
    }

    #[test]
    fn union_bbox_covers_both() {
        let ctx = SymCtx::default();
        let a = rng(c(1), c(4));
        let b = rng(c(3), n());
        let u = a.union_bbox(&b, &ctx).unwrap();
        assert!(a.subset_of(&u, &ctx));
        assert!(b.subset_of(&u, &ctx));
    }

    #[test]
    fn union_of_mismatched_phases_densifies() {
        let ctx = SymCtx::default();
        let odd = DimSect::Range {
            lo: c(1),
            hi: n(),
            step: 2,
        };
        let even = DimSect::Range {
            lo: c(2),
            hi: n(),
            step: 2,
        };
        let u = odd.union_bbox(&even, &ctx).unwrap();
        assert_eq!(u.step(), Some(1));
    }

    #[test]
    fn any_blocks_proofs_but_overlaps() {
        let ctx = SymCtx::default();
        let a = rng(c(1), c(4));
        assert!(!a.subset_of(&DimSect::Any, &ctx));
        assert!(!DimSect::Any.subset_of(&a, &ctx));
        assert!(DimSect::Any.overlaps(&a, &ctx));
    }

    #[test]
    fn section_count_and_shape() {
        let s = Section::new(vec![rng(c(1), n()), DimSect::Elem(c(3))]);
        let cnt = s.count(&|v| match v {
            Var::Param(_) => Some(10),
            _ => None,
        });
        assert_eq!(cnt, Some(10));
        let s2 = Section::new(vec![rng(c(2), n().offset(1)), DimSect::Elem(c(7))]);
        assert!(s.same_shape(&s2)); // both n × 1
    }

    #[test]
    fn scalar_section() {
        let s = Section::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.count(&|_| None), Some(1));
        assert!(s.subset_of(&Section::scalar(), &SymCtx::default()));
    }

    #[test]
    fn empty_range_counts_zero() {
        let d = rng(c(5), c(2));
        assert_eq!(d.count(&|_| None), Some(0));
    }

    #[test]
    fn subtract_bound_trim() {
        let ctx = SymCtx::default();
        // 1:n minus 1:n-1 → n:n.
        let a = rng(c(1), n());
        let b = rng(c(1), n().offset(-1));
        let r = a.subtract(&b, &ctx).unwrap();
        assert_eq!(r.lo().unwrap(), &n());
        assert_eq!(r.hi().unwrap(), &n());
        // And the other side: 1:n minus 2:n → 1:1.
        let b2 = rng(c(2), n());
        let r2 = a.subtract(&b2, &ctx).unwrap();
        assert_eq!(r2.lo().unwrap().as_const(), Some(1));
        assert_eq!(r2.hi().unwrap().as_const(), Some(1));
    }

    #[test]
    fn subtract_stride_complement() {
        let ctx = SymCtx::default();
        // Figure 4's b2 − b1: dense columns minus odd columns = even.
        let dense = rng(c(1), n());
        let odd = DimSect::Range {
            lo: c(1),
            hi: n(),
            step: 2,
        };
        let r = dense.subtract(&odd, &ctx).unwrap();
        assert_eq!(r.lo().unwrap().as_const(), Some(2));
        assert_eq!(r.step(), Some(2));
    }

    #[test]
    fn subtract_covered_is_empty() {
        let ctx = SymCtx::default();
        let a = rng(c(2), n().offset(-1));
        let b = rng(c(1), n());
        let r = a.subtract(&b, &ctx).unwrap();
        assert_eq!(r.count(&|_| Some(10)), Some(0));
    }

    #[test]
    fn section_subtract_single_dim_residual() {
        let ctx = SymCtx::default();
        // (1:n-1, 1:n) minus (1:n-1, 1:n:2) → (1:n-1, 2:n:2): exactly the
        // paper's "reduce the communication for b2 to ASD(b2) − ASD(b1)".
        let b2 = Section::new(vec![rng(c(1), n().offset(-1)), rng(c(1), n())]);
        let b1 = Section::new(vec![
            rng(c(1), n().offset(-1)),
            DimSect::Range {
                lo: c(1),
                hi: n(),
                step: 2,
            },
        ]);
        let r = b2.subtract(&b1, &ctx).unwrap();
        assert_eq!(r.dims[1].step(), Some(2));
        assert_eq!(r.dims[1].lo().unwrap().as_const(), Some(2));
        // Roughly half the volume at a concrete size.
        let full = b2.count(&|_| Some(11)).unwrap();
        let res = r.count(&|_| Some(11)).unwrap();
        assert!(res < full && res * 2 <= full + 10);
    }

    #[test]
    fn section_subtract_fully_covered_pins_canonical_empty() {
        let ctx = SymCtx::default();
        // (2:n-1, 3:n) minus (1:n, 1:n): fully covered. The canonical empty
        // residual keeps the rank, empties the FIRST dimension as the range
        // `lo : lo-1` anchored at the minuend's own lower bound, and leaves
        // the remaining dimensions untouched.
        let a = Section::new(vec![rng(c(2), n().offset(-1)), rng(c(3), n())]);
        let b = Section::new(vec![rng(c(1), n()), rng(c(1), n())]);
        let r = a.subtract(&b, &ctx).unwrap();
        assert_eq!(r.rank(), 2);
        assert_eq!(r.dims[0].lo().unwrap().as_const(), Some(2));
        assert_eq!(r.dims[0].hi().unwrap().as_const(), Some(1));
        assert_eq!(r.dims[1], a.dims[1]);
        assert_eq!(r.count(&|_| Some(10)), Some(0));

        // A fully-covered section whose first dimension is `Any` has no
        // bound to anchor the empty range: the residual is inexpressible.
        let any_a = Section::new(vec![DimSect::Any, rng(c(2), n())]);
        let any_b = Section::new(vec![DimSect::Any, rng(c(1), n())]);
        assert!(any_a.subtract(&any_b, &ctx).is_none());
    }

    #[test]
    fn section_subtract_rejects_l_shapes() {
        let ctx = SymCtx::default();
        // Residual in two dimensions is not a single regular section.
        let a = Section::new(vec![rng(c(1), n()), rng(c(1), n())]);
        let b = Section::new(vec![rng(c(2), n()), rng(c(2), n())]);
        assert!(a.subtract(&b, &ctx).is_none());
    }
}
