//! Per-compile section interning and memoized subsumption.
//!
//! The redundancy-elimination fixpoint and the greedy/optimal grouping
//! passes ask the same `D1 ⊆ D2` questions over and over (the fixpoint
//! alone rescans every candidate pair per iteration). Sections are
//! structurally hashable, so a per-compile [`SectionAlgebra`] interns each
//! distinct [`Section`] behind a small copyable [`SectId`] and memoizes
//! the subset relation on id pairs — a revisited pair costs one hash
//! lookup instead of a symbolic per-dimension comparison.
//!
//! Soundness under budgets (DESIGN.md §10): a `false` produced while the
//! budget was exhausted may be conservative rather than proven, so it is
//! **never** memoized — only answers computed to completion enter the
//! table. A memoized `true` stays valid after exhaustion (it was proven
//! when stored), which also keeps degraded runs deterministic.
//!
//! Thread safety: the tables are `Mutex`-protected so one algebra can be
//! shared by the parallel optimal-placement workers. The compute happens
//! while holding the lock, so exactly one worker performs (and counts)
//! each miss — `sections.subsume_checks` totals stay identical between
//! `--jobs 1` and `--jobs N` runs.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::section::Section;
use crate::symcmp::SymCtx;

/// A small copyable handle for an interned [`Section`] (unique within one
/// [`SectionAlgebra`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SectId(pub u32);

/// Per-compile section interner + subsumption memo table.
///
/// The symbolic context is fixed per compile, and sections at different
/// nesting levels intern to different ids (the level determines the
/// widened section), so `(SectId, SectId)` fully keys the subset
/// relation.
#[derive(Debug, Default)]
pub struct SectionAlgebra {
    arena: Mutex<HashMap<Section, SectId>>,
    subsume: Mutex<HashMap<(SectId, SectId), bool>>,
}

impl SectionAlgebra {
    /// Creates an empty algebra.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its stable id (structurally equal sections
    /// share one id).
    pub fn intern(&self, s: &Section) -> SectId {
        let mut arena = self.arena.lock().unwrap();
        if let Some(&id) = arena.get(s) {
            return id;
        }
        let id = SectId(arena.len() as u32);
        arena.insert(s.clone(), id);
        gcomm_obs::count("sections.interned", 1);
        id
    }

    /// Number of distinct sections interned so far.
    pub fn interned(&self) -> usize {
        self.arena.lock().unwrap().len()
    }

    /// Memoized [`Section::subset_of_within`]: `a ⊆ b` under the fixed
    /// symbolic context, keyed on the interned ids. Answers computed while
    /// the budget was exhausted are not cached (they may be conservative);
    /// cached answers charge nothing.
    pub fn subset_of_within(
        &self,
        a: &Section,
        a_id: SectId,
        b: &Section,
        b_id: SectId,
        ctx: &SymCtx,
        budget: &gcomm_guard::Budget,
    ) -> bool {
        // Hold the lock across the compute: a revisited pair is never
        // recomputed, even when parallel workers race to the same key, so
        // check/charge counts stay scheduling-independent.
        let mut memo = self.subsume.lock().unwrap();
        if let Some(&r) = memo.get(&(a_id, b_id)) {
            gcomm_obs::count("sections.subsume_memo_hits", 1);
            return r;
        }
        let r = a.subset_of_within(b, ctx, budget);
        if r || !budget.exhausted() {
            memo.insert((a_id, b_id), r);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::section::DimSect;
    use gcomm_ir::{Affine, ParamId, Var};

    fn n() -> Affine {
        Affine::var(Var::Param(ParamId(0)))
    }
    fn rng(lo: i64, hi_off: i64) -> Section {
        Section::new(vec![DimSect::Range {
            lo: Affine::constant(lo),
            hi: n().offset(hi_off),
            step: 1,
        }])
    }

    #[test]
    fn interning_is_structural() {
        let alg = SectionAlgebra::new();
        let a = rng(1, 0);
        let b = rng(1, 0);
        let c = rng(2, -1);
        assert_eq!(alg.intern(&a), alg.intern(&b));
        assert_ne!(alg.intern(&a), alg.intern(&c));
        assert_eq!(alg.interned(), 2);
    }

    #[test]
    fn memo_agrees_with_direct_subset() {
        let alg = SectionAlgebra::new();
        let ctx = SymCtx::default();
        let budget = gcomm_guard::Budget::unlimited();
        let inner = rng(2, -1);
        let outer = rng(1, 0);
        let (ii, oi) = (alg.intern(&inner), alg.intern(&outer));
        for _ in 0..3 {
            assert!(alg.subset_of_within(&inner, ii, &outer, oi, &ctx, &budget));
            assert!(!alg.subset_of_within(&outer, oi, &inner, ii, &ctx, &budget));
        }
    }

    #[test]
    fn exhausted_false_is_not_sticky() {
        let alg = SectionAlgebra::new();
        let ctx = SymCtx::default();
        let inner = rng(2, -1);
        let outer = rng(1, 0);
        let (ii, oi) = (alg.intern(&inner), alg.intern(&outer));
        // Zero budget: the degraded false must not be memoized...
        let dead = gcomm_guard::Budget::steps(0);
        assert!(!alg.subset_of_within(&inner, ii, &outer, oi, &ctx, &dead));
        // ...so a later well-funded query still proves the subset.
        let live = gcomm_guard::Budget::unlimited();
        assert!(alg.subset_of_within(&inner, ii, &outer, oi, &ctx, &live));
    }
}
