//! Provable symbolic comparisons between affine expressions.
//!
//! Array extents are symbolic (`n`, `nx`, …). Following standard HPF
//! compiler practice (and the paper's "rules of thumb ... when data sizes
//! are unknown"), comparisons are decided under the assumption that every
//! size parameter is at least [`SymCtx::pmin`] and unbounded above. Loop
//! variables that survive subtraction make a comparison undecidable
//! (`None`), which all clients treat conservatively.

use std::cmp::Ordering;

use gcomm_guard::Budget;
use gcomm_ir::Affine;

/// Context for symbolic comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymCtx {
    /// Minimum value every size parameter is assumed to take.
    pub pmin: i64,
}

impl Default for SymCtx {
    fn default() -> Self {
        SymCtx { pmin: 4 }
    }
}

impl SymCtx {
    /// A context assuming all parameters are at least `pmin`.
    pub fn new(pmin: i64) -> Self {
        SymCtx { pmin }
    }

    /// Tri-state comparison of `a` and `b`.
    ///
    /// Returns `Some(ordering)` only when it holds for *every* assignment of
    /// parameters ≥ `pmin` (loop variables are unconstrained, so any
    /// surviving loop-variable term makes the result `None` — unless the
    /// difference is identically zero).
    pub fn cmp(&self, a: &Affine, b: &Affine) -> Option<Ordering> {
        let d = a.sub(b);
        if let Some(k) = d.as_const() {
            return Some(k.cmp(&0));
        }
        if d.has_loop_vars() {
            return None;
        }
        let all_nonneg = d.terms().iter().all(|&(_, c)| c >= 0);
        let all_nonpos = d.terms().iter().all(|&(_, c)| c <= 0);
        // Value at the corner where every parameter equals pmin; with
        // uniformly-signed coefficients this bounds the expression.
        let corner: i64 = d.k + d.terms().iter().map(|&(_, c)| c * self.pmin).sum::<i64>();
        if all_nonneg && corner > 0 {
            return Some(Ordering::Greater);
        }
        if all_nonpos && corner < 0 {
            return Some(Ordering::Less);
        }
        None
    }

    /// True if `a ≤ b` provably.
    pub fn le(&self, a: &Affine, b: &Affine) -> bool {
        if a == b {
            return true;
        }
        let d = b.sub(a);
        if let Some(k) = d.as_const() {
            return k >= 0;
        }
        if d.has_loop_vars() {
            return false;
        }
        let all_nonneg = d.terms().iter().all(|&(_, c)| c >= 0);
        let corner: i64 = d.k + d.terms().iter().map(|&(_, c)| c * self.pmin).sum::<i64>();
        all_nonneg && corner >= 0
    }

    /// True if `a < b` provably.
    pub fn lt(&self, a: &Affine, b: &Affine) -> bool {
        matches!(self.cmp(a, b), Some(Ordering::Less))
    }

    /// True if `a ≥ b` provably.
    pub fn ge(&self, a: &Affine, b: &Affine) -> bool {
        self.le(b, a)
    }

    /// True if `a > b` provably.
    pub fn gt(&self, a: &Affine, b: &Affine) -> bool {
        self.lt(b, a)
    }

    /// True if the expressions are identical (structural equality of
    /// canonical forms).
    pub fn eq(&self, a: &Affine, b: &Affine) -> bool {
        a == b
    }

    /// Budgeted [`cmp`](Self::cmp): charges one step and answers `None`
    /// (undecidable — which every client already treats conservatively)
    /// once the budget is exhausted.
    pub fn cmp_within(&self, a: &Affine, b: &Affine, budget: &Budget) -> Option<Ordering> {
        if !budget.charge(1) {
            return None;
        }
        self.cmp(a, b)
    }

    /// Budgeted [`le`](Self::le): charges one step and answers `false`
    /// (not provable) once the budget is exhausted.
    pub fn le_within(&self, a: &Affine, b: &Affine, budget: &Budget) -> bool {
        budget.charge(1) && self.le(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcomm_ir::{LoopId, ParamId, Var};

    fn n() -> Var {
        Var::Param(ParamId(0))
    }
    fn i() -> Var {
        Var::Loop(LoopId(0))
    }

    #[test]
    fn constant_comparisons() {
        let c = SymCtx::default();
        assert_eq!(
            c.cmp(&Affine::constant(3), &Affine::constant(5)),
            Some(Ordering::Less)
        );
        assert!(c.le(&Affine::constant(3), &Affine::constant(3)));
        assert!(!c.lt(&Affine::constant(3), &Affine::constant(3)));
    }

    #[test]
    fn parameter_dominance() {
        let c = SymCtx::default();
        // n - 1 > 1 when n >= 4.
        let nm1 = Affine::new(-1, [(n(), 1)]);
        assert!(c.gt(&nm1, &Affine::constant(1)));
        // 2n >= n.
        let n1 = Affine::new(0, [(n(), 1)]);
        let n2 = Affine::new(0, [(n(), 2)]);
        assert!(c.ge(&n2, &n1));
        // n vs 10 is undecidable (n could be 4..10..).
        assert_eq!(c.cmp(&n1, &Affine::constant(10)), None);
    }

    #[test]
    fn loop_vars_cancel_or_block() {
        let c = SymCtx::default();
        // (i + 1) vs i: difference is constant 1.
        let i1 = Affine::new(1, [(i(), 1)]);
        let i0 = Affine::new(0, [(i(), 1)]);
        assert!(c.gt(&i1, &i0));
        // i vs n: undecidable.
        let nv = Affine::new(0, [(n(), 1)]);
        assert_eq!(c.cmp(&i0, &nv), None);
        assert!(!c.le(&i0, &nv));
    }

    #[test]
    fn mixed_sign_params_undecidable() {
        let c = SymCtx::default();
        // n - m: sign unknown.
        let e = Affine::new(
            0,
            [(Var::Param(ParamId(0)), 1), (Var::Param(ParamId(1)), -1)],
        );
        assert_eq!(c.cmp(&e, &Affine::constant(0)), None);
    }

    #[test]
    fn identical_exprs_equal() {
        let c = SymCtx::default();
        let e = Affine::new(7, [(n(), 2), (i(), -1)]);
        assert!(c.eq(&e, &e.clone()));
        assert!(c.le(&e, &e.clone()));
        assert!(c.ge(&e, &e.clone()));
    }
}
