//! Wire framing for the two transports (DESIGN.md §12):
//!
//! * **TCP** — length-delimited frames: a 4-byte big-endian payload length
//!   followed by that many bytes of UTF-8 JSON. The length cap is the
//!   server's first line of defence: an oversized declaration is rejected
//!   *before* any allocation, the declared bytes are skipped to stay in
//!   sync, and the connection stays usable.
//! * **stdio** — NDJSON: one JSON object per `\n`-terminated line. Line
//!   length is capped the same way; an overlong line is discarded up to
//!   its newline and reported, never buffered unboundedly.

use std::io::{self, BufRead, Read, Write};

/// Default maximum frame / line payload in bytes (8 MiB — comfortably
/// above any kernel source, far below a memory-exhaustion vector).
pub const DEFAULT_MAX_FRAME: usize = 8 * 1024 * 1024;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The 4-byte header declared more than the configured maximum. The
    /// declared length is preserved so the reader can skip the payload
    /// and keep the stream in sync.
    TooLarge {
        /// Bytes the header declared.
        declared: usize,
    },
    /// The stream ended mid-frame (after a partial header or payload) —
    /// the connection is broken and must be dropped.
    Truncated,
    /// An underlying I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge { declared } => {
                write!(f, "declared frame of {declared} bytes exceeds the maximum")
            }
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Io(e) => write!(f, "{e}"),
        }
    }
}

/// Writes one length-delimited frame. Header and payload go out in a
/// single `write_all` — two writes on an unbuffered socket would split
/// the frame across packets and hand a round-trip to Nagle + delayed-ACK
/// (~40 ms per direction) on every request.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32"))?;
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one length-delimited frame. `Ok(None)` is a clean EOF at a frame
/// boundary (the peer closed the connection between requests).
///
/// # Errors
///
/// [`FrameError::TooLarge`] when the header exceeds `max` (no payload
/// bytes consumed — call [`skip_payload`] to resynchronize),
/// [`FrameError::Truncated`] on EOF inside a frame, [`FrameError::Io`] on
/// any other failure.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(r, &mut header) {
        Ok(true) => {}
        Ok(false) => return Ok(None),
        Err(e) => return Err(FrameError::Io(e)),
    }
    let declared = u32::from_be_bytes(header) as usize;
    if declared > max {
        return Err(FrameError::TooLarge { declared });
    }
    let mut payload = vec![0u8; declared];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    })?;
    Ok(Some(payload))
}

/// Discards `n` payload bytes after a [`FrameError::TooLarge`] so the next
/// header reads from a frame boundary.
///
/// # Errors
///
/// Propagates the underlying I/O error (including EOF before `n` bytes).
pub fn skip_payload(r: &mut impl Read, n: usize) -> io::Result<()> {
    let copied = io::copy(&mut r.take(n as u64), &mut io::sink())?;
    if copied as usize != n {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "stream ended while skipping an oversized frame",
        ));
    }
    Ok(())
}

/// Reads exactly `buf.len()` bytes; `Ok(false)` on clean EOF before the
/// first byte, an `UnexpectedEof` error on EOF after it.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream ended mid-header",
            ));
        }
        filled += n;
    }
    Ok(true)
}

/// One NDJSON read outcome.
#[derive(Debug, PartialEq, Eq)]
pub enum Line {
    /// A complete line (without its newline).
    Text(String),
    /// The line exceeded the cap; it was discarded up to its newline (or
    /// EOF) and the stream is positioned at the next line.
    TooLong,
}

/// Reads one newline-terminated line with a hard length cap, never
/// buffering more than `max` bytes. `Ok(None)` is EOF with no pending
/// bytes; a final unterminated line is returned as text.
///
/// # Errors
///
/// Propagates the underlying I/O error. Invalid UTF-8 surfaces as
/// [`Line::Text`] with lossy replacement characters (the JSON parser then
/// rejects it with a proper error response).
pub fn read_line_capped(r: &mut impl BufRead, max: usize) -> io::Result<Option<Line>> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            // EOF.
            if buf.is_empty() {
                return Ok(None);
            }
            return Ok(Some(Line::Text(String::from_utf8_lossy(&buf).into_owned())));
        }
        if let Some(nl) = chunk.iter().position(|&b| b == b'\n') {
            if buf.len() + nl > max {
                r.consume(nl + 1);
                return Ok(Some(Line::TooLong));
            }
            buf.extend_from_slice(&chunk[..nl]);
            r.consume(nl + 1);
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return Ok(Some(Line::Text(String::from_utf8_lossy(&buf).into_owned())));
        }
        let take = chunk.len();
        if buf.len() + take > max {
            // Over the cap with no newline yet: drop what we have and
            // discard the remainder of the line.
            buf.clear();
            r.consume(take);
            return discard_to_newline(r).map(|_| Some(Line::TooLong));
        }
        buf.extend_from_slice(chunk);
        r.consume(take);
    }
}

fn discard_to_newline(r: &mut impl BufRead) -> io::Result<()> {
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            return Ok(());
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                r.consume(nl + 1);
                return Ok(());
            }
            None => {
                let n = chunk.len();
                r.consume(n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"world!").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"world!");
        assert!(read_frame(&mut r, 1024).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_is_rejected_then_skippable() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[b'x'; 100]).unwrap();
        write_frame(&mut buf, b"after").unwrap();
        let mut r = Cursor::new(buf);
        match read_frame(&mut r, 10) {
            Err(FrameError::TooLarge { declared }) => {
                assert_eq!(declared, 100);
                skip_payload(&mut r, declared).unwrap();
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // The stream resynchronized on the next frame.
        assert_eq!(read_frame(&mut r, 10).unwrap().unwrap(), b"after");
    }

    #[test]
    fn truncated_frames_error() {
        // Header only.
        let mut r = Cursor::new(8u32.to_be_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::Truncated)
        ));
        // Partial header.
        let mut r = Cursor::new(vec![0u8, 0]);
        assert!(matches!(read_frame(&mut r, 1024), Err(FrameError::Io(_))));
        // Partial payload.
        let mut bytes = 8u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"abc");
        let mut r = Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn capped_lines() {
        let mut r = Cursor::new(b"short\r\nlonger line\nx".to_vec());
        assert_eq!(
            read_line_capped(&mut r, 64).unwrap(),
            Some(Line::Text("short".into()))
        );
        assert_eq!(
            read_line_capped(&mut r, 64).unwrap(),
            Some(Line::Text("longer line".into()))
        );
        // Final unterminated line.
        assert_eq!(
            read_line_capped(&mut r, 64).unwrap(),
            Some(Line::Text("x".into()))
        );
        assert_eq!(read_line_capped(&mut r, 64).unwrap(), None);
    }

    #[test]
    fn overlong_line_is_discarded_not_buffered() {
        let mut data = vec![b'a'; 100];
        data.push(b'\n');
        data.extend_from_slice(b"ok\n");
        let mut r = Cursor::new(data);
        assert_eq!(read_line_capped(&mut r, 10).unwrap(), Some(Line::TooLong));
        assert_eq!(
            read_line_capped(&mut r, 10).unwrap(),
            Some(Line::Text("ok".into()))
        );
        assert_eq!(read_line_capped(&mut r, 10).unwrap(), None);
    }
}
