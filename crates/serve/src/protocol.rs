//! The `gcomm-serve/v1` request/response protocol (DESIGN.md §12).
//!
//! Every request and response is one JSON object; the transport decides
//! the envelope (NDJSON line over stdio, length-delimited frame over
//! TCP), the payload grammar is identical. Requests carry an `op` plus an
//! optional numeric `id` the server echoes verbatim, so clients may
//! pipeline and correlate. Response objects always carry `"id"` (echoed
//! or `null`) and `"ok"`.
//!
//! Compile responses are rendered as `{"id":<id>,<payload>}` where the
//! payload is a pure function of the cache key — that split is what makes
//! a cache hit bit-identical to a cold compile regardless of the id the
//! hitting request used.

use gcomm_core::Strategy;
use gcomm_guard::BudgetSpec;

use crate::json::{escape, Json};

/// Protocol identifier carried by `version` responses.
pub const PROTOCOL: &str = "gcomm-serve/v1";

/// A parsed service request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Compile mini-HPF source (optionally simulate the schedule).
    Compile(CompileReq),
    /// Return the server-lifetime observability report.
    Stats {
        /// Echoed request id.
        id: Option<u64>,
        /// When true, emit only scheduling-invariant counters (wall-clock
        /// counters filtered, no pass table or spans) — the form goldens
        /// and jobs-invariance tests diff.
        stable: bool,
    },
    /// Return the server version and protocol id.
    Version {
        /// Echoed request id.
        id: Option<u64>,
    },
    /// Liveness probe.
    Ping {
        /// Echoed request id.
        id: Option<u64>,
    },
    /// Drain the queue and stop the server.
    Shutdown {
        /// Echoed request id.
        id: Option<u64>,
    },
    /// Occupy a worker for `ms` milliseconds (capped) — a load-testing
    /// and backpressure-testing aid, documented as such.
    Sleep {
        /// Echoed request id.
        id: Option<u64>,
        /// Milliseconds to sleep (capped at [`MAX_SLEEP_MS`]).
        ms: u64,
    },
}

/// Upper bound on `sleep` requests so a client cannot park workers
/// indefinitely.
pub const MAX_SLEEP_MS: u64 = 10_000;

/// A `compile` request.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileReq {
    /// Echoed request id.
    pub id: Option<u64>,
    /// Mini-HPF source text.
    pub source: String,
    /// Placement strategy (default `comb`).
    pub strategy: Strategy,
    /// Per-request analysis budget; `None` uses the server default.
    pub budget: Option<BudgetSpec>,
    /// Optional machine simulation of the placed schedule.
    pub sim: Option<SimSpec>,
}

/// The simulation part of a compile request: which machine profile to
/// score the schedule on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimSpec {
    /// Machine profile: `sp2` (P=25) or `now` (P=8), the paper's two
    /// platforms.
    pub profile: String,
    /// Problem size `n`.
    pub n: i64,
    /// Interconnect topology (canonical `gcomm_coll::Topology` spec,
    /// default `flat`).
    pub machine: String,
    /// Collective algorithm choice (`auto|ring|rdbl|bine|p2p`, default
    /// `p2p`). `flat`+`p2p` is the legacy flat-model pricing.
    pub coll: String,
}

impl SimSpec {
    /// A spec with the legacy defaults for `machine` and `coll`.
    pub fn flat(profile: &str, n: i64) -> SimSpec {
        SimSpec {
            profile: profile.into(),
            n,
            machine: "flat".into(),
            coll: "p2p".into(),
        }
    }
}

impl Request {
    /// The echoed id, if the request carried one.
    pub fn id(&self) -> Option<u64> {
        match self {
            Request::Compile(c) => c.id,
            Request::Stats { id, .. } => *id,
            Request::Version { id }
            | Request::Ping { id }
            | Request::Shutdown { id }
            | Request::Sleep { id, .. } => *id,
        }
    }

    /// Parses a request object.
    ///
    /// # Errors
    ///
    /// Returns `(echoed id if extractable, message)` on a malformed
    /// request, so the server can still correlate the error response.
    pub fn parse(v: &Json) -> Result<Request, (Option<u64>, String)> {
        if !matches!(v, Json::Obj(_)) {
            return Err((None, "request must be a JSON object".into()));
        }
        let id = match v.get("id") {
            None | Some(Json::Null) => None,
            Some(n) => match n.as_u64() {
                Some(id) => Some(id),
                None => return Err((None, "'id' must be a non-negative integer".into())),
            },
        };
        let op = match v.get("op").and_then(Json::as_str) {
            Some(op) => op,
            None => return Err((id, "missing 'op' (a string)".into())),
        };
        match op {
            "compile" => {
                let source = match v.get("source").and_then(Json::as_str) {
                    Some(s) => s.to_string(),
                    None => return Err((id, "compile: missing 'source' (a string)".into())),
                };
                let strategy = match v.get("strategy") {
                    None | Some(Json::Null) => Strategy::Global,
                    Some(s) => match s.as_str().and_then(Strategy::parse) {
                        Some(s) => s,
                        None => {
                            return Err((
                                id,
                                "compile: 'strategy' must be orig|nored|partial|comb|optimal"
                                    .into(),
                            ))
                        }
                    },
                };
                let budget = match v.get("budget") {
                    None | Some(Json::Null) => None,
                    Some(b) => {
                        let Some(text) = b.as_str() else {
                            return Err((id, "compile: 'budget' must be a spec string".into()));
                        };
                        match BudgetSpec::parse(text) {
                            Ok(spec) => Some(spec),
                            Err(e) => return Err((id, format!("compile: {e}"))),
                        }
                    }
                };
                let sim = match v.get("sim") {
                    None | Some(Json::Null) => None,
                    Some(s) => {
                        let profile = match s.get("profile").and_then(Json::as_str) {
                            Some(p) if matches!(p, "sp2" | "now") => p.to_string(),
                            _ => return Err((id, "compile: 'sim.profile' must be sp2|now".into())),
                        };
                        let n = match s.get("n") {
                            None | Some(Json::Null) => 64,
                            Some(n) => match n.as_i64().filter(|&n| (1..=1_000_000).contains(&n)) {
                                Some(n) => n,
                                None => {
                                    return Err((
                                        id,
                                        "compile: 'sim.n' must be an integer in 1..=1000000".into(),
                                    ))
                                }
                            },
                        };
                        let machine = match s.get("machine") {
                            None | Some(Json::Null) => "flat".to_string(),
                            Some(m) => match m.as_str().map(gcomm_coll::Topology::parse) {
                                // Canonicalize, so `fat-tree` and
                                // `fat-tree:4x4` share one cache key.
                                Some(Ok(t)) => t.describe(),
                                _ => {
                                    return Err((
                                        id,
                                        "compile: 'sim.machine' must be flat|fat-tree[:NxS]|torus[:XxY]"
                                            .into(),
                                    ))
                                }
                            },
                        };
                        let coll = match s.get("coll") {
                            None | Some(Json::Null) => "p2p".to_string(),
                            Some(c) => match c.as_str().and_then(gcomm_coll::CollChoice::parse) {
                                Some(c) => c.describe().to_string(),
                                None => {
                                    return Err((
                                        id,
                                        "compile: 'sim.coll' must be auto|ring|rdbl|bine|p2p"
                                            .into(),
                                    ))
                                }
                            },
                        };
                        Some(SimSpec {
                            profile,
                            n,
                            machine,
                            coll,
                        })
                    }
                };
                Ok(Request::Compile(CompileReq {
                    id,
                    source,
                    strategy,
                    budget,
                    sim,
                }))
            }
            "stats" => {
                let stable = match v.get("stable") {
                    None | Some(Json::Null) => false,
                    Some(b) => match b.as_bool() {
                        Some(b) => b,
                        None => return Err((id, "stats: 'stable' must be a boolean".into())),
                    },
                };
                Ok(Request::Stats { id, stable })
            }
            "version" => Ok(Request::Version { id }),
            "ping" => Ok(Request::Ping { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            "sleep" => {
                let ms = match v.get("ms") {
                    None | Some(Json::Null) => 0,
                    Some(n) => match n.as_u64() {
                        Some(ms) => ms.min(MAX_SLEEP_MS),
                        None => {
                            return Err((id, "sleep: 'ms' must be a non-negative integer".into()))
                        }
                    },
                };
                Ok(Request::Sleep { id, ms })
            }
            other => Err((id, format!("unknown op '{other}'"))),
        }
    }
}

/// The canonical key material a compile request is content-addressed by:
/// protocol version, strategy, effective budget spec, sim spec, and the
/// raw source bytes, NUL-separated (NUL cannot occur inside any of the
/// components, so the encoding is injective).
pub fn cache_key_material(req: &CompileReq, effective_budget: &BudgetSpec) -> String {
    let sim = match &req.sim {
        None => "-".to_string(),
        // `machine` may itself contain ':' (dims); it sits between the
        // colon-free `n` and `coll` components, so the encoding stays
        // injective.
        Some(s) => format!("{}:{}:{}:{}", s.profile, s.n, s.machine, s.coll),
    };
    format!(
        "{PROTOCOL}\0{}\0{}\0{}\0{}",
        req.strategy.name(),
        effective_budget,
        sim,
        req.source
    )
}

/// Renders the `"id":<id>` member (JSON `null` when absent).
pub fn id_json(id: Option<u64>) -> String {
    match id {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

/// Assembles a full response from an id and a cached or freshly rendered
/// payload (the members after `"id"`).
pub fn assemble(id: Option<u64>, payload: &str) -> String {
    format!("{{\"id\":{},{payload}}}", id_json(id))
}

/// Renders an error response.
pub fn error_response(id: Option<u64>, code: &str, message: &str) -> String {
    assemble(
        id,
        &format!(
            "\"ok\":false,\"error\":{},\"message\":{}",
            escape(code),
            escape(message)
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Request, (Option<u64>, String)> {
        Request::parse(&Json::parse(text).unwrap())
    }

    #[test]
    fn parses_ops() {
        assert_eq!(
            parse(r#"{"op":"ping"}"#).unwrap(),
            Request::Ping { id: None }
        );
        assert_eq!(
            parse(r#"{"op":"stats","id":3}"#).unwrap(),
            Request::Stats {
                id: Some(3),
                stable: false
            }
        );
        assert_eq!(
            parse(r#"{"op":"stats","stable":true}"#).unwrap(),
            Request::Stats {
                id: None,
                stable: true
            }
        );
        assert_eq!(
            parse(r#"{"op":"version"}"#).unwrap(),
            Request::Version { id: None }
        );
        assert_eq!(
            parse(r#"{"op":"shutdown","id":9}"#).unwrap(),
            Request::Shutdown { id: Some(9) }
        );
        assert_eq!(
            parse(r#"{"op":"sleep","ms":99999999}"#).unwrap(),
            Request::Sleep {
                id: None,
                ms: MAX_SLEEP_MS
            }
        );
    }

    #[test]
    fn parses_compile_with_defaults_and_options() {
        let r = parse(r#"{"op":"compile","source":"program p\nend"}"#).unwrap();
        let Request::Compile(c) = r else { panic!() };
        assert_eq!(c.strategy, Strategy::Global);
        assert_eq!(c.budget, None);
        assert_eq!(c.sim, None);

        let r = parse(
            r#"{"op":"compile","id":1,"source":"s","strategy":"nored",
                "budget":"steps=100","sim":{"profile":"now","n":32}}"#,
        )
        .unwrap();
        let Request::Compile(c) = r else { panic!() };
        assert_eq!(c.strategy, Strategy::EarliestRE);
        assert_eq!(c.budget.unwrap().steps, Some(100));
        assert_eq!(c.sim, Some(SimSpec::flat("now", 32)));

        let r = parse(
            r#"{"op":"compile","source":"s",
                "sim":{"profile":"sp2","n":64,"machine":"fat-tree","coll":"auto"}}"#,
        )
        .unwrap();
        let Request::Compile(c) = r else { panic!() };
        let sim = c.sim.unwrap();
        // Topology specs canonicalize: `fat-tree` keys as `fat-tree:4x4`.
        assert_eq!(sim.machine, "fat-tree:4x4");
        assert_eq!(sim.coll, "auto");
    }

    #[test]
    fn rejects_malformed_requests_with_id_when_extractable() {
        assert_eq!(parse("[1,2]").unwrap_err().0, None);
        assert_eq!(parse(r#"{"id":5}"#).unwrap_err().0, Some(5));
        assert_eq!(parse(r#"{"op":"frob","id":5}"#).unwrap_err().0, Some(5));
        assert!(parse(r#"{"op":"compile","id":2}"#)
            .unwrap_err()
            .1
            .contains("source"));
        assert!(parse(r#"{"op":"compile","source":"s","strategy":"x"}"#).is_err());
        assert!(parse(r#"{"op":"compile","source":"s","budget":"frobs=1"}"#).is_err());
        assert!(parse(r#"{"op":"compile","source":"s","sim":{"profile":"cray"}}"#).is_err());
        assert!(parse(r#"{"op":"compile","source":"s","sim":{"profile":"sp2","n":0}}"#).is_err());
        assert!(
            parse(r#"{"op":"compile","source":"s","sim":{"profile":"sp2","machine":"mesh"}}"#)
                .is_err()
        );
        assert!(
            parse(r#"{"op":"compile","source":"s","sim":{"profile":"sp2","coll":"magic"}}"#)
                .is_err()
        );
        assert!(parse(r#"{"id":-1,"op":"ping"}"#).is_err());
        assert!(parse(r#"{"id":1.5,"op":"ping"}"#).is_err());
    }

    #[test]
    fn cache_key_is_injective_across_fields() {
        let base = CompileReq {
            id: None,
            source: "src".into(),
            strategy: Strategy::Global,
            budget: None,
            sim: None,
        };
        let unlimited = BudgetSpec::default();
        let k0 = cache_key_material(&base, &unlimited);
        let mut other = base.clone();
        other.strategy = Strategy::Original;
        assert_ne!(k0, cache_key_material(&other, &unlimited));
        let mut other = base.clone();
        other.source = "srcx".into();
        assert_ne!(k0, cache_key_material(&other, &unlimited));
        let budget = BudgetSpec::parse("steps=5").unwrap();
        assert_ne!(k0, cache_key_material(&base, &budget));
        let mut other = base.clone();
        other.sim = Some(SimSpec::flat("sp2", 64));
        assert_ne!(k0, cache_key_material(&other, &unlimited));
        let ks = cache_key_material(&other, &unlimited);
        // Requests differing only in machine or coll never share a key.
        let mut machined = other.clone();
        machined.sim.as_mut().unwrap().machine = "fat-tree:4x4".into();
        assert_ne!(ks, cache_key_material(&machined, &unlimited));
        let mut colled = other.clone();
        colled.sim.as_mut().unwrap().coll = "auto".into();
        assert_ne!(ks, cache_key_material(&colled, &unlimited));
        assert_ne!(
            cache_key_material(&machined, &unlimited),
            cache_key_material(&colled, &unlimited)
        );
        // Ids never enter the key.
        let mut other = base.clone();
        other.id = Some(7);
        assert_eq!(k0, cache_key_material(&other, &unlimited));
    }

    #[test]
    fn responses_assemble_with_and_without_ids() {
        assert_eq!(
            error_response(Some(4), "overloaded", "queue full"),
            r#"{"id":4,"ok":false,"error":"overloaded","message":"queue full"}"#
        );
        assert!(error_response(None, "bad_request", "x").starts_with(r#"{"id":null,"#));
    }
}
