//! A minimal TCP client for the compile service: frames requests, reads
//! framed responses, and can write raw bytes (the robustness tests use
//! that to send deliberately malformed frames).

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

use gcomm_core::Strategy;
use gcomm_guard::BudgetSpec;

use crate::frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
use crate::json::escape;
use crate::protocol::SimSpec;

/// One connection to a serve instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    max_frame: usize,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // One frame = one packet: without this, Nagle + delayed-ACK add
        // tens of milliseconds to every request round-trip.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// The peer address.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.writer.peer_addr()
    }

    /// Sends one request and waits for one response. Only valid when no
    /// other responses are pending on this connection (for pipelining,
    /// pair [`Client::send`] with [`Client::recv`] and match by id).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a connection closed before the response
    /// surfaces as `UnexpectedEof`.
    pub fn request(&mut self, json: &str) -> io::Result<String> {
        self.send(json)?;
        self.recv()?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })
    }

    /// Sends one framed request without waiting.
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn send(&mut self, json: &str) -> io::Result<()> {
        write_frame(&mut self.writer, json.as_bytes())
    }

    /// Writes raw bytes with no framing — for tests that must place
    /// malformed data on the wire.
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Reads one framed response; `Ok(None)` when the server closed the
    /// connection at a frame boundary.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a malformed frame surfaces as
    /// `InvalidData`.
    pub fn recv(&mut self) -> io::Result<Option<String>> {
        match read_frame(&mut self.reader, self.max_frame) {
            Ok(Some(payload)) => Ok(Some(String::from_utf8_lossy(&payload).into_owned())),
            Ok(None) => Ok(None),
            Err(FrameError::Io(e)) => Err(e),
            Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        }
    }
}

/// Renders a `compile` request object (the canonical client-side builder
/// shared by `gcommc client`, the benches, and the tests).
pub fn compile_request(
    id: u64,
    source: &str,
    strategy: Strategy,
    budget: Option<&BudgetSpec>,
    sim: Option<&SimSpec>,
) -> String {
    let mut s = format!(
        "{{\"op\":\"compile\",\"id\":{id},\"strategy\":{},\"source\":{}",
        escape(strategy.name()),
        escape(source)
    );
    if let Some(b) = budget {
        s.push_str(",\"budget\":");
        s.push_str(&escape(&b.to_string()));
    }
    if let Some(sim) = sim {
        s.push_str(&format!(
            ",\"sim\":{{\"profile\":{},\"n\":{}}}",
            escape(&sim.profile),
            sim.n
        ));
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::protocol::{CompileReq, Request};

    #[test]
    fn compile_request_roundtrips_through_the_parser() {
        let spec = BudgetSpec::parse("steps=500").unwrap();
        let sim = SimSpec {
            profile: "now".into(),
            n: 16,
        };
        let text = compile_request(
            7,
            "program p\nend",
            Strategy::EarliestRE,
            Some(&spec),
            Some(&sim),
        );
        let req = Request::parse(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(
            req,
            Request::Compile(CompileReq {
                id: Some(7),
                source: "program p\nend".into(),
                strategy: Strategy::EarliestRE,
                budget: Some(spec),
                sim: Some(sim),
            })
        );
    }
}
