//! A minimal TCP client for the compile service: frames requests, reads
//! framed responses, and can write raw bytes (the robustness tests use
//! that to send deliberately malformed frames).

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use gcomm_core::Strategy;
use gcomm_guard::BudgetSpec;

use crate::frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
use crate::json::escape;
use crate::protocol::SimSpec;

/// Default read/write deadline on every client socket. Generous — orders
/// of magnitude above any cold compile — but finite: a hung or
/// half-drained peer surfaces as a `TimedOut` error instead of blocking
/// the caller forever.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// One connection to a serve instance.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    max_frame: usize,
}

impl Client {
    /// Connects to `addr` with the [`DEFAULT_IO_TIMEOUT`] deadlines.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Client::from_stream(TcpStream::connect(addr)?)
    }

    /// Connects to `addr`, giving up on the connect itself after
    /// `timeout` (the per-I/O deadlines stay [`DEFAULT_IO_TIMEOUT`]).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure or timeout.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> io::Result<Client> {
        Client::from_stream(TcpStream::connect_timeout(addr, timeout)?)
    }

    fn from_stream(stream: TcpStream) -> io::Result<Client> {
        // One frame = one packet: without this, Nagle + delayed-ACK add
        // tens of milliseconds to every request round-trip.
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(DEFAULT_IO_TIMEOUT))?;
        stream.set_write_timeout(Some(DEFAULT_IO_TIMEOUT))?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Overrides the read/write deadlines (`None` = block forever).
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        let s = self.reader.get_ref();
        s.set_read_timeout(timeout)?;
        s.set_write_timeout(timeout)
    }

    /// The peer address.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.writer.peer_addr()
    }

    /// Sends one request and waits for one response. Only valid when no
    /// other responses are pending on this connection (for pipelining,
    /// pair [`Client::send`] with [`Client::recv`] and match by id).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a connection closed before the response
    /// surfaces as `UnexpectedEof`.
    pub fn request(&mut self, json: &str) -> io::Result<String> {
        self.send(json)?;
        self.recv()?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })
    }

    /// Sends one framed request without waiting.
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn send(&mut self, json: &str) -> io::Result<()> {
        write_frame(&mut self.writer, json.as_bytes())
    }

    /// Writes raw bytes with no framing — for tests that must place
    /// malformed data on the wire.
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Reads one framed response; `Ok(None)` when the server closed the
    /// connection at a frame boundary.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures. A peer that died mid-frame (truncated
    /// header or payload) surfaces as a `ConnectionAborted` "connection
    /// lost" error — never as a JSON parse error on a partial payload;
    /// any other malformed frame surfaces as `InvalidData`.
    pub fn recv(&mut self) -> io::Result<Option<String>> {
        match read_frame(&mut self.reader, self.max_frame) {
            Ok(Some(payload)) => Ok(Some(String::from_utf8_lossy(&payload).into_owned())),
            Ok(None) => Ok(None),
            Err(FrameError::Truncated) => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "connection lost mid-frame",
            )),
            Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => {
                Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "connection lost mid-frame",
                ))
            }
            Err(FrameError::Io(e)) => Err(e),
            Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        }
    }
}

/// Renders a `compile` request object (the canonical client-side builder
/// shared by `gcommc client`, the benches, and the tests).
pub fn compile_request(
    id: u64,
    source: &str,
    strategy: Strategy,
    budget: Option<&BudgetSpec>,
    sim: Option<&SimSpec>,
) -> String {
    let mut s = format!(
        "{{\"op\":\"compile\",\"id\":{id},\"strategy\":{},\"source\":{}",
        escape(strategy.name()),
        escape(source)
    );
    if let Some(b) = budget {
        s.push_str(",\"budget\":");
        s.push_str(&escape(&b.to_string()));
    }
    if let Some(sim) = sim {
        s.push_str(&format!(
            ",\"sim\":{{\"profile\":{},\"n\":{},\"machine\":{},\"coll\":{}}}",
            escape(&sim.profile),
            sim.n,
            escape(&sim.machine),
            escape(&sim.coll)
        ));
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::protocol::{CompileReq, Request};

    #[test]
    fn compile_request_roundtrips_through_the_parser() {
        let spec = BudgetSpec::parse("steps=500").unwrap();
        let mut sim = SimSpec::flat("now", 16);
        sim.machine = "torus:5x5".into();
        sim.coll = "auto".into();
        let text = compile_request(
            7,
            "program p\nend",
            Strategy::EarliestRE,
            Some(&spec),
            Some(&sim),
        );
        let req = Request::parse(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(
            req,
            Request::Compile(CompileReq {
                id: Some(7),
                source: "program p\nend".into(),
                strategy: Strategy::EarliestRE,
                budget: Some(spec),
                sim: Some(sim),
            })
        );
    }
}
