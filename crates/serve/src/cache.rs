//! Content-addressed compile cache: FNV-1a keys, byte-capacity-bounded
//! LRU eviction.
//!
//! The cache maps a **canonical key string** — the exact bytes of
//! `(protocol version, strategy, budget spec, sim spec, source)` joined
//! with NUL separators (see `protocol::cache_key_material`) — to the
//! rendered response payload of a cold compile. Because the stored value
//! *is* the response payload, a hit is bit-identical to a cold compile by
//! construction; the property tests then prove the converse (a cold
//! recompile reproduces the stored bytes).
//!
//! The 64-bit FNV-1a hash is only the index; the full key material is
//! kept in each entry and compared on lookup, so a hash collision
//! degrades to a miss (and the colliding insert replaces the entry) —
//! never to a wrong answer.

use std::collections::{BTreeMap, HashMap};

/// 64-bit FNV-1a, the content-address hash of the compile cache.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[derive(Debug)]
struct Entry {
    /// Full canonical key material (collision guard).
    key: String,
    /// Cached response payload.
    value: String,
    /// Recency tick; the entry also appears in `order` under this tick.
    tick: u64,
}

/// An LRU cache bounded by total bytes (key + value lengths).
///
/// Not internally synchronized — the service wraps it in a `Mutex` (the
/// critical sections are a hash + map probe, far cheaper than a compile).
#[derive(Debug)]
pub struct LruCache {
    cap_bytes: u64,
    used_bytes: u64,
    /// Hash → entry.
    map: HashMap<u64, Entry>,
    /// Recency tick → hash; the first (smallest-tick) entry is the LRU
    /// eviction victim.
    order: BTreeMap<u64, u64>,
    next_tick: u64,
}

impl LruCache {
    /// An empty cache holding at most `cap_bytes` of key+value bytes.
    pub fn new(cap_bytes: u64) -> LruCache {
        LruCache {
            cap_bytes,
            used_bytes: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
            next_tick: 0,
        }
    }

    /// Looks up `key` (full canonical material), refreshing its recency on
    /// a hit. A hash collision with different key material is a miss.
    pub fn get(&mut self, key: &str) -> Option<String> {
        let hash = fnv1a(key.as_bytes());
        let entry = self.map.get_mut(&hash)?;
        if entry.key != key {
            return None;
        }
        let old_tick = entry.tick;
        entry.tick = self.next_tick;
        self.next_tick += 1;
        let tick = entry.tick;
        let value = entry.value.clone();
        self.order.remove(&old_tick);
        self.order.insert(tick, hash);
        Some(value)
    }

    /// Inserts (or replaces) an entry, evicting least-recently-used
    /// entries until the capacity bound holds again. Returns the number of
    /// entries evicted. An entry larger than the whole capacity is not
    /// stored (and evicts nothing).
    pub fn insert(&mut self, key: String, value: String) -> u64 {
        let entry_bytes = (key.len() + value.len()) as u64;
        if entry_bytes > self.cap_bytes {
            return 0;
        }
        let hash = fnv1a(key.as_bytes());
        if let Some(old) = self.map.remove(&hash) {
            // Replacement (same key re-inserted, or a hash collision: the
            // newcomer wins — the old entry can no longer be trusted to be
            // reachable anyway).
            self.used_bytes -= (old.key.len() + old.value.len()) as u64;
            self.order.remove(&old.tick);
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        self.used_bytes += entry_bytes;
        self.map.insert(hash, Entry { key, value, tick });
        self.order.insert(tick, hash);
        let mut evicted = 0;
        while self.used_bytes > self.cap_bytes {
            let (&victim_tick, &victim_hash) = self
                .order
                .iter()
                .next()
                .expect("used_bytes > 0 implies a resident entry");
            if victim_hash == hash && self.map.len() == 1 {
                break; // never evict the entry just inserted when alone
            }
            self.order.remove(&victim_tick);
            let victim = self.map.remove(&victim_hash).expect("order and map agree");
            self.used_bytes -= (victim.key.len() + victim.value.len()) as u64;
            evicted += 1;
        }
        evicted
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently held (keys + values).
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// The byte capacity.
    pub fn cap_bytes(&self) -> u64 {
        self.cap_bytes
    }

    /// Keys of the resident entries in LRU → MRU order (test aid).
    pub fn keys_lru_first(&self) -> Vec<String> {
        self.order
            .values()
            .map(|h| self.map[h].key.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn get_hits_after_insert_and_misses_cold() {
        let mut c = LruCache::new(1024);
        assert_eq!(c.get("k1"), None);
        c.insert("k1".into(), "v1".into());
        assert_eq!(c.get("k1"), Some("v1".into()));
        assert_eq!(c.get("k2"), None);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 4);
    }

    #[test]
    fn eviction_is_lru_order() {
        // Each entry is 4 bytes (2-byte key + 2-byte value); cap 12 holds 3.
        let mut c = LruCache::new(12);
        c.insert("k1".into(), "v1".into());
        c.insert("k2".into(), "v2".into());
        c.insert("k3".into(), "v3".into());
        assert_eq!(c.keys_lru_first(), ["k1", "k2", "k3"]);
        // Touch k1 so k2 becomes the LRU victim.
        assert!(c.get("k1").is_some());
        assert_eq!(c.insert("k4".into(), "v4".into()), 1);
        assert_eq!(c.get("k2"), None, "k2 was the least recently used");
        assert!(c.get("k1").is_some());
        assert!(c.get("k3").is_some());
        assert!(c.get("k4").is_some());
        // The gets above refreshed recency in k1, k3, k4 order.
        assert_eq!(c.keys_lru_first(), ["k1", "k3", "k4"]);
        // A 10-byte entry forces three evictions in LRU order.
        assert_eq!(c.insert("kx".into(), "12345678".into()), 3);
        assert_eq!(c.keys_lru_first(), ["kx"]);
    }

    #[test]
    fn replacement_updates_bytes() {
        let mut c = LruCache::new(64);
        c.insert("k".into(), "aa".into());
        c.insert("k".into(), "bbbb".into());
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 5);
        assert_eq!(c.get("k"), Some("bbbb".into()));
    }

    #[test]
    fn oversized_entry_is_not_stored() {
        let mut c = LruCache::new(8);
        c.insert("key".into(), "valuevalue".into());
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        assert_eq!(c.get("key"), None);
    }

    #[test]
    fn capacity_bound_always_holds() {
        let mut c = LruCache::new(100);
        let mut state = 7u64;
        for i in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let vlen = (state % 40) as usize;
            c.insert(format!("key{i}"), "x".repeat(vlen));
            assert!(c.used_bytes() <= c.cap_bytes(), "bound violated at {i}");
            let resident: u64 = c
                .keys_lru_first()
                .iter()
                .map(|k| (k.len() + c.get(k).unwrap().len()) as u64)
                .sum();
            assert_eq!(resident, c.used_bytes(), "accounting drifted at {i}");
        }
    }
}
