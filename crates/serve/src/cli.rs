//! Shared command-line plumbing for `gcommc` and the benchmark binaries.
//!
//! Every driver in the workspace accepts the same cross-cutting flags —
//! `--stats`, `--stats-json <path>`, `--budget <spec>`, `--jobs <n>`
//! (via [`gcomm_par::take_jobs_flag`]), and now `--addr <host:port>` /
//! `--cache-bytes <size>` / `--version` — and every one of them must obey
//! the same contract: a malformed flag exits with status 2 and one clear
//! message. This module is the single implementation; the `take_*`
//! helpers strip their flags from the argument list so each binary's own
//! parser never sees them, and [`or_exit2`] applies the exit-2 contract.

use gcomm_guard::{parse_size, BudgetSpec};

pub use crate::VERSION;

/// Applies the shared CLI error contract: on `Err`, print
/// `<bin>: <message>` to stderr and exit with status 2.
pub fn or_exit2<T>(bin: &str, r: Result<T, String>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{bin}: {e}");
            std::process::exit(2);
        }
    }
}

/// Removes `--version` from `args`; when present the caller should print
/// [`version_line`] and exit 0.
pub fn take_version_flag(args: &mut Vec<String>) -> bool {
    let before = args.len();
    args.retain(|a| a != "--version");
    args.len() != before
}

/// The one-line `--version` output shared by every binary: the single
/// workspace-level version constant plus the service protocol id.
pub fn version_line(bin: &str) -> String {
    format!("{bin} {} ({})", VERSION, crate::protocol::PROTOCOL)
}

/// Extracts the value following flag `name`, removing both from `args`.
///
/// # Errors
///
/// When the flag is present without a value, or the value looks like
/// another option.
fn take_value_flag(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let mut value = None;
    let mut kept = Vec::with_capacity(args.len());
    let mut it = args.drain(..);
    let mut err = None;
    while let Some(a) = it.next() {
        if a == name {
            match it.next() {
                Some(v) if !v.starts_with("--") => value = Some(v),
                Some(v) => {
                    err = Some(format!("{name} expects a value, got option '{v}'"));
                    break;
                }
                None => {
                    err = Some(format!("{name} expects a value"));
                    break;
                }
            }
        } else {
            kept.push(a);
        }
    }
    drop(it);
    *args = kept;
    match err {
        Some(e) => Err(e),
        None => Ok(value),
    }
}

/// Extracts `--budget <spec>` (e.g. `steps=50000,ms=200,mem=4m`),
/// defaulting to the unlimited budget.
///
/// # Errors
///
/// On a missing value or a spec [`BudgetSpec::parse`] rejects.
pub fn take_budget_flag(args: &mut Vec<String>) -> Result<BudgetSpec, String> {
    match take_value_flag(args, "--budget")
        .map_err(|_| "--budget expects a spec, e.g. steps=50000,ms=200,mem=4m".to_string())?
    {
        None => Ok(BudgetSpec::default()),
        Some(spec) => BudgetSpec::parse(&spec),
    }
}

/// Extracts `--addr <host:port>` (the serve/client transport address).
///
/// # Errors
///
/// On a missing value or an address without a `:port` part.
pub fn take_addr_flag(args: &mut Vec<String>) -> Result<Option<String>, String> {
    match take_value_flag(args, "--addr")? {
        None => Ok(None),
        Some(a) if a.contains(':') => Ok(Some(a)),
        Some(a) => Err(format!("--addr expects host:port, got '{a}'")),
    }
}

/// Extracts `--cache-bytes <size>` (k/m/g suffixes, e.g. `32m`), the
/// compile-cache capacity.
///
/// # Errors
///
/// On a missing or malformed size.
pub fn take_cache_bytes_flag(args: &mut Vec<String>) -> Result<Option<u64>, String> {
    match take_value_flag(args, "--cache-bytes")? {
        None => Ok(None),
        Some(v) => parse_size(&v)
            .map(Some)
            .map_err(|e| format!("--cache-bytes: {e}")),
    }
}

/// Extracts `--persist <dir>`, the persistent compile-cache directory
/// (DESIGN.md §15). The directory is created on service start; `None`
/// keeps the cache in memory only.
///
/// # Errors
///
/// On a missing value.
pub fn take_persist_flag(args: &mut Vec<String>) -> Result<Option<String>, String> {
    take_value_flag(args, "--persist").map_err(|_| "--persist expects a directory path".to_string())
}

/// Extracts `--persist-fsync always|off|interval:N`, the durability
/// policy of the persistent cache log.
///
/// # Errors
///
/// On a missing value or a policy [`gcomm_store::FsyncPolicy::parse`]
/// rejects.
pub fn take_persist_fsync_flag(
    args: &mut Vec<String>,
) -> Result<Option<gcomm_store::FsyncPolicy>, String> {
    match take_value_flag(args, "--persist-fsync")
        .map_err(|_| "--persist-fsync expects always, off, or interval:N".to_string())?
    {
        None => Ok(None),
        Some(spec) => gcomm_store::FsyncPolicy::parse(&spec)
            .map(Some)
            .map_err(|e| format!("--persist-fsync: {e}")),
    }
}

/// Extracts a repeatable-count flag like `--shards <n>` (n ≥ 1).
///
/// # Errors
///
/// On a missing value, a non-integer, or zero.
pub fn take_count_flag(args: &mut Vec<String>, name: &str) -> Result<Option<usize>, String> {
    match take_value_flag(args, name)? {
        None => Ok(None),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(format!("{name} expects a positive integer, got '{v}'")),
        },
    }
}

/// Extracts every occurrence of `name <value>` (a repeatable flag, e.g.
/// `--attach <addr> --attach <addr>`), preserving order.
///
/// # Errors
///
/// When any occurrence is missing its value.
pub fn take_repeated_flag(args: &mut Vec<String>, name: &str) -> Result<Vec<String>, String> {
    let mut values = Vec::new();
    let mut kept = Vec::with_capacity(args.len());
    let mut it = args.drain(..);
    let mut err = None;
    while let Some(a) = it.next() {
        if a == name {
            match it.next() {
                Some(v) if !v.starts_with("--") => values.push(v),
                _ => {
                    err = Some(format!("{name} expects a value"));
                    break;
                }
            }
        } else {
            kept.push(a);
        }
    }
    drop(it);
    *args = kept;
    match err {
        Some(e) => Err(e),
        None => Ok(values),
    }
}

/// Stats options parsed out of a binary's argument list (`--stats`,
/// `--stats-json <path>`).
#[derive(Debug, Default)]
pub struct StatsOpts {
    /// Print the human-readable table to stderr on completion.
    pub text: bool,
    /// Write the JSON report to this path on completion.
    pub json_path: Option<String>,
}

impl StatsOpts {
    /// Extracts `--stats` and `--stats-json <path>` from `args`, removing
    /// them so the binary's own parsing never sees them.
    ///
    /// # Errors
    ///
    /// When `--stats-json` is missing its path (or the "path" is another
    /// option).
    pub fn extract(args: &mut Vec<String>) -> Result<StatsOpts, String> {
        let mut opts = StatsOpts::default();
        let before = args.len();
        args.retain(|a| a != "--stats");
        opts.text = args.len() != before;
        opts.json_path = take_value_flag(args, "--stats-json")
            .map_err(|_| "--stats-json expects a file path".to_string())?;
        Ok(opts)
    }

    /// True when any stats output was requested.
    pub fn enabled(&self) -> bool {
        self.text || self.json_path.is_some()
    }

    /// Installs a fresh registry scoped to the returned guard; `None` when
    /// stats are off. Emission happens when the guard drops.
    pub fn install(self) -> Option<StatsScope> {
        if !self.enabled() {
            return None;
        }
        let reg = gcomm_obs::Registry::new();
        let scope = gcomm_obs::install(reg.clone());
        Some(StatsScope {
            opts: self,
            reg,
            _scope: scope,
        })
    }
}

/// Keeps stats collection active; renders the report on drop.
pub struct StatsScope {
    opts: StatsOpts,
    reg: gcomm_obs::Registry,
    _scope: gcomm_obs::ScopeGuard,
}

impl StatsScope {
    /// The registry collecting this scope's stats.
    pub fn registry(&self) -> &gcomm_obs::Registry {
        &self.reg
    }
}

impl Drop for StatsScope {
    fn drop(&mut self) {
        let report = self.reg.snapshot();
        if self.opts.text {
            eprint!("{}", report.render_text());
        }
        if let Some(path) = &self.opts.json_path {
            if let Err(e) = std::fs::write(path, report.to_json()) {
                eprintln!("stats: {path}: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn stats_flags_are_extracted_and_validated() {
        let mut args = argv(&["x", "--stats", "--stats-json", "out.json", "y"]);
        let opts = StatsOpts::extract(&mut args).unwrap();
        assert!(opts.text);
        assert_eq!(opts.json_path.as_deref(), Some("out.json"));
        assert!(opts.enabled());
        assert_eq!(args, argv(&["x", "y"]));

        let mut bad = argv(&["--stats-json"]);
        assert!(StatsOpts::extract(&mut bad).is_err());
        let mut bad = argv(&["--stats-json", "--stats"]);
        assert!(StatsOpts::extract(&mut bad).is_err());

        let mut none = argv(&["plain"]);
        assert!(!StatsOpts::extract(&mut none).unwrap().enabled());
    }

    #[test]
    fn budget_flag_parses_or_defaults() {
        let mut args = argv(&["--budget", "steps=9", "k"]);
        assert_eq!(take_budget_flag(&mut args).unwrap().steps, Some(9));
        assert_eq!(args, argv(&["k"]));
        let mut none = argv(&["k"]);
        assert!(take_budget_flag(&mut none).unwrap().is_unlimited());
        let mut bad = argv(&["--budget", "frobs=1"]);
        assert!(take_budget_flag(&mut bad).is_err());
        let mut missing = argv(&["--budget"]);
        assert!(take_budget_flag(&mut missing).is_err());
    }

    #[test]
    fn addr_and_cache_bytes_flags() {
        let mut args = argv(&["--addr", "127.0.0.1:7070", "--cache-bytes", "2m"]);
        assert_eq!(
            take_addr_flag(&mut args).unwrap().as_deref(),
            Some("127.0.0.1:7070")
        );
        assert_eq!(
            take_cache_bytes_flag(&mut args).unwrap(),
            Some(2 * 1024 * 1024)
        );
        assert!(args.is_empty());
        let mut bad = argv(&["--addr", "noport"]);
        assert!(take_addr_flag(&mut bad).is_err());
        let mut bad = argv(&["--cache-bytes", "lots"]);
        assert!(take_cache_bytes_flag(&mut bad).is_err());
    }

    #[test]
    fn persist_flags() {
        let mut args = argv(&[
            "--persist",
            "/tmp/cache",
            "--persist-fsync",
            "interval:8",
            "x",
        ]);
        assert_eq!(
            take_persist_flag(&mut args).unwrap().as_deref(),
            Some("/tmp/cache")
        );
        assert_eq!(
            take_persist_fsync_flag(&mut args).unwrap(),
            Some(gcomm_store::FsyncPolicy::Interval(8))
        );
        assert_eq!(args, argv(&["x"]));
        let mut none = argv(&["x"]);
        assert_eq!(take_persist_flag(&mut none).unwrap(), None);
        assert_eq!(take_persist_fsync_flag(&mut none).unwrap(), None);
        let mut bad = argv(&["--persist"]);
        assert!(take_persist_flag(&mut bad).is_err());
        let mut bad = argv(&["--persist-fsync", "sometimes"]);
        assert!(take_persist_fsync_flag(&mut bad).is_err());
    }

    #[test]
    fn count_and_repeated_flags() {
        let mut args = argv(&["--shards", "4", "rest"]);
        assert_eq!(take_count_flag(&mut args, "--shards").unwrap(), Some(4));
        assert_eq!(args, argv(&["rest"]));
        let mut none = argv(&["rest"]);
        assert_eq!(take_count_flag(&mut none, "--shards").unwrap(), None);
        for bad in [&["--shards", "0"][..], &["--shards", "x"], &["--shards"]] {
            let mut bad = argv(bad);
            assert!(take_count_flag(&mut bad, "--shards").is_err());
        }

        let mut args = argv(&["--attach", "a:1", "keep", "--attach", "b:2"]);
        assert_eq!(
            take_repeated_flag(&mut args, "--attach").unwrap(),
            argv(&["a:1", "b:2"])
        );
        assert_eq!(args, argv(&["keep"]));
        let mut bad = argv(&["--attach"]);
        assert!(take_repeated_flag(&mut bad, "--attach").is_err());
    }

    #[test]
    fn version_flag_and_line() {
        let mut args = argv(&["a", "--version", "b"]);
        assert!(take_version_flag(&mut args));
        assert_eq!(args, argv(&["a", "b"]));
        assert!(!take_version_flag(&mut args));
        let line = version_line("gcommc");
        assert!(line.starts_with("gcommc "));
        assert!(line.contains(VERSION));
        assert!(line.contains("gcomm-serve/v1"));
    }
}
