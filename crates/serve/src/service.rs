//! The transport-independent service core: request execution, the compile
//! cache, per-request observability, and the in-order stats absorber.
//!
//! A [`Service`] is shared (behind an `Arc`) between every connection
//! thread and every pool worker. It owns:
//!
//! * the content-addressed compile [`LruCache`] (under a mutex — the
//!   critical section is a hash plus a map probe, orders of magnitude
//!   cheaper than a compile);
//! * the **lifetime registry** all per-request stats merge into, and the
//!   sequencing machinery that keeps that merge *jobs-invariant*: every
//!   request draws a sequence number at submission ([`Service::begin`])
//!   and its snapshot is absorbed strictly in sequence order
//!   ([`Service::finish`] holds out-of-order reports in a reorder
//!   buffer), so a `stats` report taken after a set of requests completed
//!   is identical whether the pool ran 1 worker or 8.

use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use gcomm_core::incr::{self, IncrCompiler, ModuleOutcome, RoutineArtifacts, RoutineOutcome};
use gcomm_core::{lower_to_sim, Compiled, SimConfig, Strategy};
use gcomm_guard::BudgetSpec;
use gcomm_machine::{simulate_with_faults, FaultPlan, NetworkModel, ProcGrid};
use gcomm_obs::{Registry, StatsReport};
use gcomm_query::{fingerprint, mix, Computed, QueryEngine};
use gcomm_store::{FsyncPolicy, Store, StoreConfig};

use crate::cache::LruCache;
use crate::frame::DEFAULT_MAX_FRAME;
use crate::json::escape;
use crate::protocol::{assemble, cache_key_material, CompileReq, SimSpec};

/// Tuning knobs of a service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing compiles (`--jobs`/`GCOMM_JOBS`).
    pub jobs: usize,
    /// Bounded request-queue capacity; submissions beyond it are rejected
    /// with `overloaded` (backpressure, never unbounded buffering).
    pub queue_cap: usize,
    /// Byte capacity of the compile cache (`--cache-bytes`).
    pub cache_bytes: u64,
    /// Budget applied to compile requests that do not carry their own.
    pub default_budget: BudgetSpec,
    /// Maximum accepted frame/line payload in bytes.
    pub max_frame: usize,
    /// Byte capacity of the incremental query engine's memo
    /// (`--query-cache-bytes`; `0` disables incremental compilation and
    /// every payload-cache miss compiles from scratch).
    pub query_cache_bytes: u64,
    /// Directory of the persistent compile cache (`--persist`); `None`
    /// keeps the cache purely in memory. With a directory, cache inserts
    /// are written through to a crash-safe segmented log
    /// ([`gcomm_store::Store`]) and a restarted service warms from it —
    /// recovered hits are bit-identical to cold compiles because the
    /// stored value *is* the rendered payload (DESIGN.md §15).
    pub persist: Option<PathBuf>,
    /// fsync policy of the persistent log (`--persist-fsync`).
    pub persist_fsync: FsyncPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            jobs: gcomm_par::default_jobs(),
            queue_cap: 64,
            cache_bytes: 32 * 1024 * 1024,
            default_budget: BudgetSpec::default(),
            max_frame: DEFAULT_MAX_FRAME,
            query_cache_bytes: 64 * 1024 * 1024,
            persist: None,
            persist_fsync: FsyncPolicy::Always,
        }
    }
}

/// Reorder buffer absorbing per-request reports in sequence order.
#[derive(Debug, Default)]
struct Absorber {
    next_expected: u64,
    pending: std::collections::BTreeMap<u64, StatsReport>,
}

/// The shared state of one running compile service.
#[derive(Debug)]
pub struct Service {
    config: ServiceConfig,
    cache: Mutex<LruCache>,
    /// Write-through persistent log shadowing the cache (DESIGN.md §15).
    store: Option<Mutex<Store>>,
    incr: Option<IncrCompiler>,
    lifetime: Registry,
    absorber: Mutex<Absorber>,
    next_seq: AtomicU64,
}

impl Service {
    /// A fresh in-memory service with an empty cache and zeroed lifetime
    /// stats.
    ///
    /// # Panics
    ///
    /// When the config carries a `persist` directory that cannot be
    /// opened — prefer [`Service::open`] for persistent services, which
    /// surfaces the error.
    pub fn new(config: ServiceConfig) -> Service {
        Service::open(config).expect("opening the persistent cache failed")
    }

    /// Opens a service, recovering the persistent compile cache first
    /// when `config.persist` names a directory: the segmented log's
    /// recovery scan runs (truncating torn records, quarantining corrupt
    /// ones — see [`gcomm_store::Store::open`]), surviving entries warm
    /// the in-memory LRU in last-write order, and the
    /// `store.recover_ok`/`store.recover_torn`/`store.quarantined`
    /// counters land in the lifetime registry. By the time `open`
    /// returns, every recovered entry is servable and bit-identical to
    /// the cold compile that produced it.
    ///
    /// # Errors
    ///
    /// Any I/O error creating, scanning, or repairing the persist
    /// directory. Infallible when `config.persist` is `None`.
    pub fn open(config: ServiceConfig) -> io::Result<Service> {
        let lifetime = Registry::new();
        let mut cache = LruCache::new(config.cache_bytes);
        let store = match &config.persist {
            None => None,
            Some(dir) => {
                let store_cfg = StoreConfig {
                    fsync: config.persist_fsync,
                    ..StoreConfig::default()
                };
                let (store, recovery) = Store::open(dir, store_cfg)?;
                lifetime.add("store.recover_ok", recovery.records_ok);
                lifetime.add("store.recover_torn", recovery.torn);
                lifetime.add("store.quarantined", recovery.quarantined);
                for (key, value) in recovery.entries {
                    // The log stores opaque bytes, but every record we
                    // write is UTF-8 (key material and JSON payloads). A
                    // non-UTF-8 record is foreign — quarantine it too.
                    match (String::from_utf8(key), String::from_utf8(value)) {
                        (Ok(k), Ok(v)) => {
                            cache.insert(k, v);
                        }
                        _ => lifetime.add("store.quarantined", 1),
                    }
                }
                Some(Mutex::new(store))
            }
        };
        let incr =
            (config.query_cache_bytes > 0).then(|| IncrCompiler::new(config.query_cache_bytes));
        Ok(Service {
            config,
            cache: Mutex::new(cache),
            store,
            incr,
            lifetime,
            absorber: Mutex::new(Absorber::default()),
            next_seq: AtomicU64::new(0),
        })
    }

    /// The incremental query engine, when enabled (for stats and tests).
    pub fn query_engine(&self) -> Option<&QueryEngine> {
        self.incr.as_ref().map(IncrCompiler::engine)
    }

    /// The configuration this service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Draws the sequence number for a request **at submission time**.
    /// Every `begin` must be paired with exactly one [`Service::finish`]
    /// (even for rejected or failed requests), or later reports stall in
    /// the reorder buffer.
    pub fn begin(&self) -> u64 {
        self.next_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Completes sequence number `seq` with the request's stats snapshot.
    /// Reports are absorbed into the lifetime registry strictly in
    /// sequence order; an out-of-order completion parks in the reorder
    /// buffer until its predecessors arrive.
    pub fn finish(&self, seq: u64, report: StatsReport) {
        let mut ab = self.absorber.lock().unwrap();
        ab.pending.insert(seq, report);
        loop {
            let next = ab.next_expected;
            let Some(rep) = ab.pending.remove(&next) else {
                break;
            };
            self.lifetime.absorb(&rep);
            ab.next_expected += 1;
        }
    }

    /// A one-off report carrying only the given counters — the completion
    /// shape for requests that never execute (rejections, parse errors).
    pub fn counter_report(&self, counters: &[(&str, u64)]) -> StatsReport {
        let reg = Registry::new();
        for &(name, v) in counters {
            reg.add(name, v);
        }
        reg.snapshot()
    }

    /// Snapshot of the lifetime registry (completed requests only — an
    /// in-flight request's stats appear once it finishes and its turn in
    /// the sequence order comes up).
    pub fn lifetime_report(&self) -> StatsReport {
        self.lifetime.snapshot()
    }

    /// Executes a compile request, returning the full response and the
    /// request's stats snapshot (pass it to [`Service::finish`]).
    pub fn compile(&self, req: &CompileReq) -> (String, StatsReport) {
        let reg = Registry::new();
        let payload = {
            let _g = gcomm_obs::install(reg.clone());
            gcomm_obs::count("serve.requests", 1);
            self.compile_payload(req)
        };
        (assemble(req.id, &payload), reg.snapshot())
    }

    /// The response payload (everything after `"id":…,`) for a compile
    /// request: served from the cache when possible, compiled cold
    /// otherwise. Requests with a wall-clock (`ms=`) budget bypass the
    /// cache — their degradation depends on the clock, so the payload is
    /// not a pure function of the key.
    fn compile_payload(&self, req: &CompileReq) -> String {
        let effective = req.budget.unwrap_or(self.config.default_budget);
        let cacheable = effective.ms.is_none();
        if !cacheable {
            gcomm_obs::count("cache.bypass", 1);
            gcomm_obs::count("serve.compiles", 1);
            return cold_compile_payload(req, &effective);
        }
        let key = cache_key_material(req, &effective);
        if let Some(hit) = self.cache.lock().unwrap().get(&key) {
            gcomm_obs::count("cache.hit", 1);
            return hit;
        }
        gcomm_obs::count("cache.miss", 1);
        gcomm_obs::count("serve.compiles", 1);
        // The warm-edit path: with the query engine enabled, a near-miss
        // (an edited source) recomputes only the pipeline stages whose
        // input fingerprints actually changed; everything else is reused
        // bit-identically (DESIGN.md §14).
        let payload = match &self.incr {
            Some(ic) => incremental_payload(ic, req, &effective),
            None => cold_compile_payload(req, &effective),
        };
        self.persist_entry(&key, &payload);
        let evicted = self.cache.lock().unwrap().insert(key, payload.clone());
        if evicted > 0 {
            gcomm_obs::count("cache.evict", evicted);
        }
        payload
    }

    /// Write-through to the persistent log (when configured): the exact
    /// key material and payload the in-memory cache holds, so recovery
    /// re-creates cache entries byte for byte. An append failure degrades
    /// the service to in-memory caching for that entry — compiles must
    /// keep flowing on a full or failing disk.
    fn persist_entry(&self, key: &str, payload: &str) {
        let Some(store) = &self.store else { return };
        match store
            .lock()
            .unwrap()
            .append(key.as_bytes(), payload.as_bytes())
        {
            Ok(a) => {
                gcomm_obs::count("store.append", 1);
                if a.fsynced {
                    gcomm_obs::count("store.fsync", 1);
                }
                if a.compacted {
                    gcomm_obs::count("store.compact", 1);
                }
            }
            Err(e) => eprintln!("gcomm-serve: persist append failed: {e}"),
        }
    }

    /// Inline cache probe for the transports: on a hit the reader thread
    /// answers directly — the request never consumes a worker slot or
    /// queue capacity, so warm latency stays flat under compile load and
    /// backpressure never rejects a request the cache could have served.
    /// Counts exactly what the pooled hit path would have counted
    /// (`serve.requests` + `cache.hit`), keeping stats jobs-invariant.
    pub fn try_cached(&self, req: &CompileReq) -> Option<(String, StatsReport)> {
        let effective = req.budget.unwrap_or(self.config.default_budget);
        if effective.ms.is_some() {
            return None; // wall-clock budgets always compile (and bypass).
        }
        let key = cache_key_material(req, &effective);
        let payload = self.cache.lock().unwrap().get(&key)?;
        Some((
            assemble(req.id, &payload),
            self.counter_report(&[("serve.requests", 1), ("cache.hit", 1)]),
        ))
    }

    /// Cache occupancy `(entries, used_bytes)` (for reports and tests).
    pub fn cache_usage(&self) -> (usize, u64) {
        let c = self.cache.lock().unwrap();
        (c.len(), c.used_bytes())
    }
}

/// Compiles a request without consulting any cache and renders its
/// response payload. Pure in the content-addressing sense: for a fixed
/// `(req minus id, effective)` the returned bytes are identical across
/// invocations, which is the property the cache relies on (and the
/// bit-identity property test checks). Runs the same stage functions as
/// the incremental path with no memoization, so the two paths agree
/// byte for byte (tests/incremental_differential.rs).
pub fn cold_compile_payload(req: &CompileReq, effective: &BudgetSpec) -> String {
    let outcome = incr::compile_module_cold(&req.source, req.strategy, effective);
    render_outcome(&outcome, req, None)
}

/// Renders a compile outcome as a response payload, memoizing successful
/// per-routine renders in the query engine when one is supplied. A
/// single-routine source keeps the exact classic payload shape (PR 5);
/// a multi-routine module gets `"module":true` with a per-routine array.
fn render_outcome(
    outcome: &ModuleOutcome,
    req: &CompileReq,
    engine: Option<&QueryEngine>,
) -> String {
    if !outcome.all_ok() {
        gcomm_obs::count("serve.errors", 1);
    }
    if outcome.any_degraded() {
        gcomm_obs::count("serve.degraded", 1);
    }
    if let [routine] = outcome.routines.as_slice() {
        return match &routine.result {
            Ok(a) => render_ok(a, req, engine, RenderShape::Single),
            Err(_) => single_error_payload(&routine.module_errors()),
        };
    }
    let mut p = module_header(outcome.all_ok(), req, outcome.any_degraded());
    for (i, routine) in outcome.routines.iter().enumerate() {
        if i > 0 {
            p.push(',');
        }
        p.push_str(&routine_fragment(routine, req, engine));
    }
    p.push(']');
    p
}

/// The classic single-routine error payload.
fn single_error_payload(errs: &[gcomm_core::CoreError]) -> String {
    format!(
        "\"ok\":false,\"error\":\"compile_error\",\"errors\":{}",
        errors_json(errs)
    )
}

/// The opening of a module payload, up to the `routines` array.
fn module_header(all_ok: bool, req: &CompileReq, any_degraded: bool) -> String {
    format!(
        "\"ok\":{},\"module\":true,\"strategy\":{},\"degraded\":{},\"routines\":[",
        all_ok,
        escape(req.strategy.name()),
        any_degraded
    )
}

/// Fingerprint of a render frame shape (part of every render key).
fn shape_tag(shape: RenderShape) -> u64 {
    match shape {
        RenderShape::Single => fingerprint(b"single"),
        RenderShape::Fragment => fingerprint(b"frag"),
    }
}

/// Fingerprint of the request's sim spec (part of every render key).
/// Mirrors [`crate::protocol::cache_key_material`]'s sim component:
/// machine and coll are part of the identity, so requests differing only
/// in topology or algorithm never share a memoized render.
fn sim_fp(req: &CompileReq) -> u64 {
    match &req.sim {
        None => fingerprint(b"-"),
        Some(s) => {
            fingerprint(format!("{}:{}:{}:{}", s.profile, s.n, s.machine, s.coll).as_bytes())
        }
    }
}

/// A fully rendered routine plus the flags the module frame needs — the
/// value of the routine-level render memo.
#[derive(Debug)]
struct RoutineRender {
    payload: String,
    ok: bool,
    degraded: bool,
}

/// The warm-edit path (DESIGN.md §14): chunks the source and serves each
/// byte-unchanged routine's finished render from a single routine-level
/// memo probe. Only changed chunks descend into the pass-level queries
/// (parse → lower → place → render), where early cutoff still applies.
/// Byte-identical to [`cold_compile_payload`]: the compute path runs the
/// same stage functions and the same framing helpers.
fn incremental_payload(ic: &IncrCompiler, req: &CompileReq, effective: &BudgetSpec) -> String {
    let eng = ic.engine();
    let chunks = incr::split_routines(&req.source);
    let shape = if chunks.len() == 1 {
        RenderShape::Single
    } else {
        RenderShape::Fragment
    };
    let frame_fp = mix(
        mix(shape_tag(shape), sim_fp(req)),
        fingerprint(format!("{effective}").as_bytes()),
    );
    let strat_fp = fingerprint(req.strategy.name().as_bytes());
    let rendered: Vec<std::sync::Arc<RoutineRender>> = chunks
        .iter()
        .map(|chunk| {
            eng.note_input(fingerprint(chunk.name.as_bytes()), chunk.fp);
            let key = mix(mix(chunk.fp, strat_fp), frame_fp);
            let (r, _) = eng.memo("query.routine", key, || {
                let routine = ic.compile_routine(chunk, req.strategy, effective);
                let (payload, ok, degraded) = match &routine.result {
                    Ok(a) => (render_ok(a, req, Some(eng), shape), true, a.degraded),
                    Err(_) => (render_error(&routine, shape), false, false),
                };
                Computed {
                    bytes: payload.len() as u64 + 2,
                    // Error payloads embed module-level line numbers (they
                    // depend on where the chunk sits, not just its bytes);
                    // degraded ones depend on budget progress. Neither is a
                    // pure function of this key.
                    cacheable: ok && !degraded,
                    value: RoutineRender {
                        payload,
                        ok,
                        degraded,
                    },
                }
            });
            r
        })
        .collect();
    let all_ok = rendered.iter().all(|r| r.ok);
    let any_degraded = rendered.iter().any(|r| r.degraded);
    if !all_ok {
        gcomm_obs::count("serve.errors", 1);
    }
    if any_degraded {
        gcomm_obs::count("serve.degraded", 1);
    }
    if let [r] = rendered.as_slice() {
        return r.payload.clone();
    }
    let mut p = module_header(all_ok, req, any_degraded);
    for (i, r) in rendered.iter().enumerate() {
        if i > 0 {
            p.push(',');
        }
        p.push_str(&r.payload);
    }
    p.push(']');
    p
}

/// Renders an error routine in the given frame shape (shared by the
/// routine-level memo's compute path; the cold path goes through
/// [`render_outcome`]'s equivalent branches).
fn render_error(routine: &RoutineOutcome, shape: RenderShape) -> String {
    match shape {
        RenderShape::Single => single_error_payload(&routine.module_errors()),
        RenderShape::Fragment => format!(
            "{{\"name\":{},\"ok\":false,\"errors\":{}}}",
            escape(&routine.name),
            errors_json(&routine.module_errors())
        ),
    }
}

/// How a successful routine render is framed: the classic single-routine
/// payload, or one element of a module's `"routines"` array.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RenderShape {
    Single,
    Fragment,
}

/// One element of a module payload's `"routines"` array.
fn routine_fragment(
    routine: &RoutineOutcome,
    req: &CompileReq,
    engine: Option<&QueryEngine>,
) -> String {
    match &routine.result {
        Ok(a) => render_ok(a, req, engine, RenderShape::Fragment),
        // Error fragments embed module-level line numbers, which depend
        // on where the chunk sits — cheap to render, never memoized.
        Err(_) => format!(
            "{{\"name\":{},\"ok\":false,\"errors\":{}}}",
            escape(&routine.name),
            errors_json(&routine.module_errors())
        ),
    }
}

/// Renders a successful routine, through the render memo when an engine
/// is available. The key extends the place key (already ir × strategy ×
/// budget) with the sim spec and the frame shape; degraded renders are
/// never cached, matching the place stage's rule.
fn render_ok(
    a: &RoutineArtifacts,
    req: &CompileReq,
    engine: Option<&QueryEngine>,
    shape: RenderShape,
) -> String {
    let Some(eng) = engine else {
        return render_ok_fresh(a, req, shape);
    };
    let key = mix(mix(a.place_key, sim_fp(req)), shape_tag(shape));
    let (payload, _) = eng.memo("query.render", key, || {
        let p = render_ok_fresh(a, req, shape);
        Computed {
            bytes: p.len() as u64,
            cacheable: !a.degraded,
            value: p,
        }
    });
    (*payload).clone()
}

fn render_ok_fresh(a: &RoutineArtifacts, req: &CompileReq, shape: RenderShape) -> String {
    let report = a.schedule.report(&a.prog);
    let mut p = match shape {
        RenderShape::Single => format!(
            "\"ok\":true,\"strategy\":{},\"degraded\":{},\"report\":{}",
            escape(req.strategy.name()),
            a.degraded,
            escape(&report)
        ),
        RenderShape::Fragment => format!(
            "{{\"name\":{},\"ok\":true,\"degraded\":{},\"report\":{}",
            escape(&a.prog.name),
            a.degraded,
            escape(&report)
        ),
    };
    if let Some(sim) = &req.sim {
        // The simulator wants a `Compiled`; only the sim path pays for
        // the owned clones.
        let compiled = Compiled {
            prog: (*a.prog).clone(),
            schedule: (*a.schedule).clone(),
            stats: Default::default(),
        };
        p.push_str(",\"sim\":");
        p.push_str(&sim_json(&compiled, sim));
    }
    if shape == RenderShape::Fragment {
        p.push('}');
    }
    p
}

/// Renders a diagnostics list as a JSON array.
fn errors_json(errs: &[gcomm_core::CoreError]) -> String {
    let mut p = String::from("[");
    for (i, e) in errs.iter().enumerate() {
        if i > 0 {
            p.push(',');
        }
        let _ = write!(
            p,
            "{{\"line\":{},\"message\":{}}}",
            e.line,
            escape(&e.message)
        );
    }
    p.push(']');
    p
}

/// Runs the machine simulation of a compiled schedule on the requested
/// profile and renders it as a JSON object. Deterministic: the simulator
/// is an analytical cost model, not a measurement.
fn sim_json(compiled: &Compiled, sim: &SimSpec) -> String {
    let (p, net) = match sim.profile.as_str() {
        "sp2" => (25u32, NetworkModel::sp2()),
        _ => (8u32, NetworkModel::now_myrinet()),
    };
    // Same grid-rank choice as the gcommc --sim path: the largest number
    // of distributed dimensions among the program's arrays.
    let rank = compiled
        .prog
        .arrays
        .iter()
        .map(|a| a.distributed_dims().len())
        .max()
        .unwrap_or(1)
        .max(1);
    let mut cfg =
        SimConfig::uniform(compiled, ProcGrid::balanced(p, rank), sim.n).with("nsteps", 10);
    // `flat`+`p2p` is the legacy flat-model pricing: identical numbers,
    // and old-protocol requests keep their exact historical output.
    if !(sim.machine == "flat" && sim.coll == "p2p") {
        let topo = gcomm_coll::Topology::parse(&sim.machine).unwrap_or(gcomm_coll::Topology::Flat);
        let choice = gcomm_coll::CollChoice::parse(&sim.coll)
            .unwrap_or(gcomm_coll::CollChoice::Fixed(gcomm_coll::Algo::P2p));
        cfg = cfg.with_coll(gcomm_coll::CollConfig::new(topo, choice, net.clone()));
    }
    let rep = simulate_with_faults(&lower_to_sim(compiled, &cfg), &net, &FaultPlan::quiet());
    let r = rep.result;
    format!(
        "{{\"profile\":{},\"p\":{p},\"n\":{},\"total_us\":{},\"compute_us\":{},\
         \"comm_us\":{},\"messages\":{},\"bytes\":{}}}",
        escape(&sim.profile),
        sim.n,
        fmt_f64(r.total_us()),
        fmt_f64(r.compute_us),
        fmt_f64(r.comm_us),
        r.messages,
        fmt_f64(r.bytes)
    )
}

/// Formats a simulator quantity for JSON: finite shortest-roundtrip
/// decimal (Rust's `Display` for `f64` never emits exponents or
/// non-numeric tokens for finite values; the simulator only produces
/// finite, non-negative times).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders a stats response payload from a report. `stable` keeps only
/// scheduling-invariant counters (drops `*.wall_ns`, the pass table, the
/// spans, and the events), which is the diffable form.
pub fn stats_payload(report: &StatsReport, stable: bool) -> String {
    if !stable {
        return format!("\"ok\":true,\"stats\":{}", report.to_json());
    }
    let mut p =
        String::from("\"ok\":true,\"stats\":{\"schema\":\"gcomm-serve-stats/v1\",\"counters\":{");
    let mut first = true;
    for (k, v) in &report.counters {
        if k.ends_with(".wall_ns") {
            continue;
        }
        if !first {
            p.push(',');
        }
        first = false;
        let _ = write!(p, "{}:{v}", escape(k));
    }
    p.push_str("}}");
    p
}

/// Parses an optional strategy name defaulting to the paper's combined
/// placement.
pub fn strategy_or_default(name: Option<&str>) -> Option<Strategy> {
    match name {
        None => Some(Strategy::Global),
        Some(n) => Strategy::parse(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::protocol::Request;

    const OK_SRC: &str = "program p\nparam n\nreal a(n,n), b(n,n) distribute (block, block)\nb(2:n, 1:n) = a(1:n-1, 1:n)\nend\n";

    fn compile_req(source: &str) -> CompileReq {
        CompileReq {
            id: Some(1),
            source: source.into(),
            strategy: Strategy::Global,
            budget: None,
            sim: None,
        }
    }

    #[test]
    fn cache_hit_is_bit_identical_and_counted() {
        let svc = Service::new(ServiceConfig::default());
        let req = compile_req(OK_SRC);
        let (cold, rep0) = svc.compile(&req);
        svc.finish(svc.begin(), rep0);
        let mut warm_req = req.clone();
        warm_req.id = Some(99); // a different id must not defeat the cache
        let (warm, rep1) = svc.compile(&warm_req);
        svc.finish(svc.begin(), rep1);
        // Identical payloads behind the echoed ids.
        assert_eq!(
            cold.strip_prefix("{\"id\":1,").unwrap(),
            warm.strip_prefix("{\"id\":99,").unwrap()
        );
        let life = svc.lifetime_report();
        assert_eq!(life.counter("cache.miss"), 1);
        assert_eq!(life.counter("cache.hit"), 1);
        assert_eq!(life.counter("serve.compiles"), 1);
        assert_eq!(life.counter("serve.requests"), 2);
        assert_eq!(svc.cache_usage().0, 1);
    }

    #[test]
    fn ms_budget_bypasses_the_cache() {
        let svc = Service::new(ServiceConfig::default());
        let mut req = compile_req(OK_SRC);
        req.budget = Some(BudgetSpec::parse("ms=10000").unwrap());
        let (_, r0) = svc.compile(&req);
        let (_, r1) = svc.compile(&req);
        svc.finish(svc.begin(), r0);
        svc.finish(svc.begin(), r1);
        let life = svc.lifetime_report();
        assert_eq!(life.counter("cache.bypass"), 2);
        assert_eq!(life.counter("cache.hit"), 0);
        assert_eq!(life.counter("serve.compiles"), 2);
        assert_eq!(svc.cache_usage().0, 0);
    }

    #[test]
    fn compile_errors_are_rendered_and_cached() {
        let svc = Service::new(ServiceConfig::default());
        let req = compile_req("program p\nthis is not hpf\nend\n");
        let (resp, rep) = svc.compile(&req);
        svc.finish(svc.begin(), rep);
        assert!(resp.contains("\"ok\":false"));
        assert!(resp.contains("\"error\":\"compile_error\""));
        let v = Json::parse(&resp).expect("error responses are valid JSON");
        assert!(v.get("errors").unwrap().as_str().is_none());
        // Diagnostics are deterministic, so they cache like successes.
        let (resp2, rep2) = svc.compile(&req);
        svc.finish(svc.begin(), rep2);
        assert_eq!(resp, resp2);
        assert_eq!(svc.lifetime_report().counter("cache.hit"), 1);
    }

    #[test]
    fn sim_payload_is_deterministic_and_parses() {
        let req = CompileReq {
            sim: Some(SimSpec::flat("sp2", 32)),
            ..compile_req(OK_SRC)
        };
        let a = cold_compile_payload(&req, &BudgetSpec::default());
        let b = cold_compile_payload(&req, &BudgetSpec::default());
        assert_eq!(a, b);
        let v = Json::parse(&format!("{{{a}}}")).unwrap();
        let sim = v.get("sim").unwrap();
        assert_eq!(sim.get("p").unwrap().as_u64(), Some(25));
        assert!(sim.get("total_us").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn finish_reorders_out_of_order_completions() {
        let svc = Service::new(ServiceConfig::default());
        let s0 = svc.begin();
        let s1 = svc.begin();
        let s2 = svc.begin();
        svc.finish(s2, svc.counter_report(&[("t.c", 4)]));
        assert_eq!(svc.lifetime_report().counter("t.c"), 0, "parked");
        svc.finish(s0, svc.counter_report(&[("t.c", 1)]));
        assert_eq!(svc.lifetime_report().counter("t.c"), 1);
        svc.finish(s1, svc.counter_report(&[("t.c", 2)]));
        assert_eq!(svc.lifetime_report().counter("t.c"), 7, "drained in order");
    }

    #[test]
    fn stable_stats_filter_wall_counters() {
        let reg = Registry::new();
        reg.add("cache.hit", 3);
        reg.add("dep.query.wall_ns", 123456);
        let p = stats_payload(&reg.snapshot(), true);
        assert!(p.contains("\"cache.hit\":3"));
        assert!(!p.contains("wall_ns"));
        let v = Json::parse(&format!("{{{p}}}")).unwrap();
        assert_eq!(
            v.get("stats").unwrap().get("schema").unwrap().as_str(),
            Some("gcomm-serve-stats/v1")
        );
    }

    #[test]
    fn stats_requests_parse_with_stable_flag() {
        let v = Json::parse(r#"{"op":"stats","stable":true,"id":2}"#).unwrap();
        assert_eq!(
            Request::parse(&v).unwrap(),
            Request::Stats {
                id: Some(2),
                stable: true
            }
        );
    }
}
