//! The transport layer: a TCP accept loop (length-delimited frames) and a
//! stdio loop (NDJSON), both dispatching into one [`Service`] and one
//! bounded [`Pool`].
//!
//! ## Concurrency shape
//!
//! One reader thread per connection parses frames and **submits** compile
//! and sleep work to the worker pool; everything else (stats, version,
//! ping, shutdown, malformed input) is answered inline by the reader.
//! Responses are written under a per-connection writer mutex, so worker
//! and reader writes never interleave bytes. Responses to pooled requests
//! may arrive out of submission order — that is what request ids are for.
//!
//! ## Backpressure
//!
//! The pool queue is bounded; a submission finding it full is answered
//! with an `overloaded` error immediately. The server never buffers
//! requests beyond the queue capacity.
//!
//! ## Drain and shutdown
//!
//! A `shutdown` request (or [`ShutdownFlag::request`], which the `gcommc
//! serve` binary wires to SIGINT/SIGTERM) makes the accept loop stop —
//! it is woken by a loopback connection — after which the pool is drained
//! (**every accepted job still runs and its response is written**), the
//! connection sockets are shut down to unblock their readers, and all
//! threads are joined before [`Server::run`] returns.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use gcomm_par::{Pool, PoolHandle, SubmitError};

use crate::frame::{read_frame, read_line_capped, skip_payload, write_frame, FrameError, Line};
use crate::json::{escape, Json};
use crate::protocol::{assemble, error_response, Request, PROTOCOL};
use crate::service::{stats_payload, Service, ServiceConfig};
use crate::VERSION;

/// A clonable request-to-stop handle shared by the accept loop, the
/// connection threads, and (in the binary) the signal watcher.
#[derive(Debug, Clone, Default)]
pub struct ShutdownFlag {
    flag: Arc<AtomicBool>,
    /// When serving TCP, the listener's address: setting the flag also
    /// makes a loopback connection so a blocked `accept` observes it.
    wake_addr: Arc<Mutex<Option<SocketAddr>>>,
}

impl ShutdownFlag {
    /// A fresh, unset flag.
    pub fn new() -> ShutdownFlag {
        ShutdownFlag::default()
    }

    /// Requests shutdown: sets the flag and wakes a blocked accept loop.
    /// Idempotent.
    pub fn request(&self) {
        self.flag.store(true, Ordering::SeqCst);
        let addr = *self.wake_addr.lock().unwrap();
        if let Some(addr) = addr {
            // The accepted-and-dropped connection exists only to return
            // control to the accept loop, which re-checks the flag.
            let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
        }
    }

    /// True once shutdown has been requested.
    pub fn is_set(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    pub(crate) fn set_wake_addr(&self, addr: SocketAddr) {
        *self.wake_addr.lock().unwrap() = Some(addr);
    }
}

/// How responses are delimited on the wire.
enum Framing {
    /// 4-byte big-endian length prefix (TCP).
    Frames,
    /// One JSON object per line (stdio).
    Lines,
}

/// A shared, mutex-serialized response sink. Write failures are swallowed:
/// they mean the peer went away, and the reader side of the connection
/// will notice on its next read.
struct ResponseWriter {
    framing: Framing,
    w: Mutex<Box<dyn Write + Send>>,
}

impl ResponseWriter {
    fn send(&self, response: &str) {
        let mut w = self.w.lock().unwrap();
        let _ = match self.framing {
            Framing::Frames => write_frame(&mut *w, response.as_bytes()),
            Framing::Lines => writeln!(w, "{response}").and_then(|()| w.flush()),
        };
    }
}

/// Handles one request text: parses it, answers management ops inline,
/// and submits compile/sleep work to the pool. Never panics on malformed
/// input — every failure becomes an error response on `writer`.
fn dispatch(
    svc: &Arc<Service>,
    pool: &PoolHandle,
    writer: &Arc<ResponseWriter>,
    shutdown: &ShutdownFlag,
    text: &str,
) {
    let seq = svc.begin();
    let parsed = Json::parse(text)
        .map_err(|e| (None, format!("invalid JSON: {e}")))
        .and_then(|v| Request::parse(&v));
    let req = match parsed {
        Ok(r) => r,
        Err((id, msg)) => {
            svc.finish(
                seq,
                svc.counter_report(&[("serve.requests", 1), ("serve.errors", 1)]),
            );
            writer.send(&error_response(id, "bad_request", &msg));
            return;
        }
    };
    match req {
        Request::Compile(c) => {
            // Cache hits are answered inline by the reader: no worker
            // slot, no queue capacity, no backpressure — a warm request
            // costs a hash and a map probe even when the pool is busy.
            if let Some((resp, report)) = svc.try_cached(&c) {
                svc.finish(seq, report);
                writer.send(&resp);
                return;
            }
            let id = c.id;
            let svc2 = Arc::clone(svc);
            let wr = Arc::clone(writer);
            let submitted = pool.try_submit(move || {
                let (resp, report) = svc2.compile(&c);
                svc2.finish(seq, report);
                wr.send(&resp);
            });
            reject_if_failed(svc, writer, seq, id, submitted);
        }
        Request::Sleep { id, ms } => {
            let svc2 = Arc::clone(svc);
            let wr = Arc::clone(writer);
            let submitted = pool.try_submit(move || {
                std::thread::sleep(Duration::from_millis(ms));
                svc2.finish(seq, svc2.counter_report(&[("serve.requests", 1)]));
                wr.send(&assemble(id, &format!("\"ok\":true,\"slept_ms\":{ms}")));
            });
            reject_if_failed(svc, writer, seq, id, submitted);
        }
        Request::Stats { id, stable } => {
            // Finish our own sequence number first so a stats request
            // issued after a set of *completed* requests observes all of
            // them (plus itself); stats racing in-flight compiles see
            // only what has drained, by design.
            svc.finish(seq, svc.counter_report(&[("serve.requests", 1)]));
            writer.send(&assemble(
                id,
                &stats_payload(&svc.lifetime_report(), stable),
            ));
        }
        Request::Version { id } => {
            svc.finish(seq, svc.counter_report(&[("serve.requests", 1)]));
            writer.send(&assemble(
                id,
                &format!(
                    "\"ok\":true,\"version\":{},\"protocol\":{}",
                    escape(VERSION),
                    escape(PROTOCOL)
                ),
            ));
        }
        Request::Ping { id } => {
            svc.finish(seq, svc.counter_report(&[("serve.requests", 1)]));
            writer.send(&assemble(id, "\"ok\":true,\"pong\":true"));
        }
        Request::Shutdown { id } => {
            svc.finish(seq, svc.counter_report(&[("serve.requests", 1)]));
            writer.send(&assemble(id, "\"ok\":true,\"shutting_down\":true"));
            shutdown.request();
        }
    }
}

/// Turns a failed submission into the corresponding error response and
/// completes its sequence number so the stats absorber never stalls.
fn reject_if_failed(
    svc: &Arc<Service>,
    writer: &Arc<ResponseWriter>,
    seq: u64,
    id: Option<u64>,
    submitted: Result<(), SubmitError>,
) {
    match submitted {
        Ok(()) => {}
        Err(SubmitError::Full) => {
            svc.finish(
                seq,
                svc.counter_report(&[("serve.requests", 1), ("serve.overloaded", 1)]),
            );
            writer.send(&error_response(
                id,
                "overloaded",
                "request queue is full, retry later",
            ));
        }
        Err(SubmitError::Closed) => {
            svc.finish(seq, svc.counter_report(&[("serve.requests", 1)]));
            writer.send(&error_response(id, "shutting_down", "server is draining"));
        }
    }
}

/// Reads frames off one TCP connection until EOF, a fatal frame error, or
/// socket shutdown. Oversized frames are rejected *and resynchronized*;
/// garbage JSON is rejected per-frame; the loop itself never panics and
/// never exits on a malformed request.
fn serve_tcp_connection(
    svc: &Arc<Service>,
    pool: &PoolHandle,
    stream: TcpStream,
    shutdown: &ShutdownFlag,
    max_frame: usize,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(ResponseWriter {
        framing: Framing::Frames,
        w: Mutex::new(Box::new(write_half)),
    });
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader, max_frame) {
            Ok(Some(payload)) => {
                let text = String::from_utf8_lossy(&payload).into_owned();
                dispatch(svc, pool, &writer, shutdown, &text);
            }
            Ok(None) => break,
            Err(FrameError::TooLarge { declared }) => {
                let seq = svc.begin();
                svc.finish(
                    seq,
                    svc.counter_report(&[("serve.requests", 1), ("serve.errors", 1)]),
                );
                writer.send(&error_response(
                    None,
                    "too_large",
                    &format!("declared frame of {declared} bytes exceeds {max_frame}"),
                ));
                if skip_payload(&mut reader, declared).is_err() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// A bound-but-not-yet-running TCP server.
pub struct Server {
    listener: TcpListener,
    svc: Arc<Service>,
    shutdown: ShutdownFlag,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7070`, port 0 for ephemeral). When
    /// the config persists, the recovery scan runs here — a server that
    /// reached its `serving on` banner has finished warming from disk.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure or a persistent-cache recovery error.
    pub fn bind(addr: &str, config: ServiceConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let shutdown = ShutdownFlag::new();
        shutdown.set_wake_addr(listener.local_addr()?);
        Ok(Server {
            listener,
            svc: Arc::new(Service::open(config)?),
            shutdown,
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops this server when requested.
    pub fn shutdown_flag(&self) -> ShutdownFlag {
        self.shutdown.clone()
    }

    /// The shared service state (cache, lifetime stats).
    pub fn service(&self) -> Arc<Service> {
        Arc::clone(&self.svc)
    }

    /// Accepts and serves connections until shutdown is requested, then
    /// drains and joins everything (see the module docs).
    ///
    /// # Errors
    ///
    /// Currently infallible after a successful bind; the `io::Result`
    /// return leaves room for fatal accept failures to surface.
    pub fn run(self) -> io::Result<()> {
        let cfg = self.svc.config().clone();
        let pool = Pool::new(cfg.jobs, cfg.queue_cap);
        let conns: Mutex<Vec<TcpStream>> = Mutex::new(Vec::new());
        let mut threads: Vec<JoinHandle<()>> = Vec::new();
        for incoming in self.listener.incoming() {
            if self.shutdown.is_set() {
                break;
            }
            let Ok(stream) = incoming else { continue };
            // Responses must not sit in Nagle's buffer waiting for an ACK.
            let _ = stream.set_nodelay(true);
            if let Ok(clone) = stream.try_clone() {
                conns.lock().unwrap().push(clone);
            }
            let svc = Arc::clone(&self.svc);
            let handle = pool.handle();
            let shutdown = self.shutdown.clone();
            let max_frame = cfg.max_frame;
            threads.push(std::thread::spawn(move || {
                serve_tcp_connection(&svc, &handle, stream, &shutdown, max_frame);
            }));
        }
        // Drain: every job accepted before the close still runs and its
        // response is written (the sockets are still open here).
        pool.shutdown();
        // Unblock any reader still waiting on its socket, then join.
        for s in conns.lock().unwrap().iter() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        for t in threads {
            let _ = t.join();
        }
        Ok(())
    }
}

/// A running server on its own thread (the test/bench entry point).
pub struct ServerHandle {
    addr: SocketAddr,
    svc: Arc<Service>,
    shutdown: ShutdownFlag,
    thread: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state.
    pub fn service(&self) -> &Arc<Service> {
        &self.svc
    }

    /// Requests shutdown and waits for the full drain.
    ///
    /// # Errors
    ///
    /// Propagates the server loop's error.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the server thread.
    pub fn stop(self) -> io::Result<()> {
        self.shutdown.request();
        self.thread.join().expect("server thread panicked")
    }
}

/// Binds `addr` and runs the server on a background thread.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn spawn(addr: &str, config: ServiceConfig) -> io::Result<ServerHandle> {
    let server = Server::bind(addr, config)?;
    let addr = server.local_addr()?;
    let svc = server.service();
    let shutdown = server.shutdown_flag();
    let thread = std::thread::spawn(move || server.run());
    Ok(ServerHandle {
        addr,
        svc,
        shutdown,
        thread,
    })
}

/// Serves NDJSON requests from `input` until EOF or a `shutdown` request
/// (or `shutdown` being set externally — checked between lines), then
/// drains the pool. This is `gcommc serve` without `--addr`, and the form
/// the CI smoke job scripts.
///
/// # Errors
///
/// Propagates read failures on `input`.
pub fn serve_lines(
    svc: &Arc<Service>,
    input: &mut impl BufRead,
    output: Box<dyn Write + Send>,
    shutdown: &ShutdownFlag,
) -> io::Result<()> {
    let cfg = svc.config().clone();
    let pool = Pool::new(cfg.jobs, cfg.queue_cap);
    let handle = pool.handle();
    let writer = Arc::new(ResponseWriter {
        framing: Framing::Lines,
        w: Mutex::new(output),
    });
    while !shutdown.is_set() {
        match read_line_capped(input, cfg.max_frame)? {
            None => break,
            Some(Line::TooLong) => {
                let seq = svc.begin();
                svc.finish(
                    seq,
                    svc.counter_report(&[("serve.requests", 1), ("serve.errors", 1)]),
                );
                writer.send(&error_response(
                    None,
                    "too_large",
                    &format!("line exceeds {} bytes", cfg.max_frame),
                ));
            }
            Some(Line::Text(text)) => {
                if text.trim().is_empty() {
                    continue;
                }
                dispatch(svc, &handle, &writer, shutdown, &text);
            }
        }
    }
    pool.shutdown();
    Ok(())
}

/// SIGINT/SIGTERM wiring for the `gcommc serve` binary: a C `signal`
/// handler that only stores a flag, plus a watcher thread that forwards
/// it to a [`ShutdownFlag`]. Nothing here runs unless [`signal::install`]
/// is called, so tests and library users are unaffected.
#[cfg(unix)]
pub mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    use super::ShutdownFlag;

    static SIGNALLED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        // Async-signal-safe: a single atomic store.
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    /// Installs the SIGINT and SIGTERM handlers (process-wide).
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: registering an async-signal-safe handler via the libc
        // `signal` entry point; the handler only stores an atomic.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }

    /// True once a handled signal arrived.
    pub fn received() -> bool {
        SIGNALLED.load(Ordering::SeqCst)
    }

    /// Spawns a detached watcher that forwards the first handled signal
    /// to `flag` (and exits once `flag` is set by anyone).
    pub fn watch(flag: ShutdownFlag) {
        std::thread::spawn(move || loop {
            if received() {
                flag.request();
                return;
            }
            if flag.is_set() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn test_config() -> ServiceConfig {
        ServiceConfig {
            jobs: 2,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn tcp_roundtrip_ping_version_shutdown() {
        let server = spawn("127.0.0.1:0", test_config()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        assert_eq!(
            client.request(r#"{"op":"ping","id":1}"#).unwrap(),
            r#"{"id":1,"ok":true,"pong":true}"#
        );
        let version = client.request(r#"{"op":"version","id":2}"#).unwrap();
        assert!(version.contains(&format!("\"version\":\"{VERSION}\"")));
        assert!(version.contains(PROTOCOL));
        assert_eq!(
            client.request(r#"{"op":"shutdown","id":3}"#).unwrap(),
            r#"{"id":3,"ok":true,"shutting_down":true}"#
        );
        drop(client);
        server.stop().unwrap();
    }

    #[test]
    fn malformed_frames_do_not_kill_the_connection() {
        let server = spawn("127.0.0.1:0", test_config()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        // Garbage JSON.
        let resp = client.request("{not json").unwrap();
        assert!(resp.contains("\"error\":\"bad_request\""));
        // Not an object.
        let resp = client.request("[1,2,3]").unwrap();
        assert!(resp.contains("\"error\":\"bad_request\""));
        // Unknown op with an id — the id is echoed.
        let resp = client.request(r#"{"op":"frobnicate","id":7}"#).unwrap();
        assert!(resp.starts_with(r#"{"id":7,"#), "{resp}");
        // An oversized frame: declared > max. The server rejects it,
        // skips the payload, and the connection still works.
        let huge = vec![b'x'; crate::frame::DEFAULT_MAX_FRAME + 1];
        client
            .send_raw(&u32::try_from(huge.len()).unwrap().to_be_bytes())
            .unwrap();
        client.send_raw(&huge).unwrap();
        let resp = client.recv().unwrap().unwrap();
        assert!(resp.contains("\"error\":\"too_large\""), "{resp}");
        // The stream resynchronized.
        assert_eq!(
            client.request(r#"{"op":"ping","id":9}"#).unwrap(),
            r#"{"id":9,"ok":true,"pong":true}"#
        );
        drop(client);
        server.stop().unwrap();
    }

    #[test]
    fn lines_transport_serves_a_script() {
        let svc = Arc::new(Service::new(test_config()));
        let script = concat!(
            r#"{"op":"ping","id":1}"#,
            "\n\n", // blank lines are skipped
            r#"{"op":"stats","id":2,"stable":true}"#,
            "\n",
            r#"{"op":"shutdown","id":3}"#,
            "\n",
            r#"{"op":"ping","id":4}"#, // never read: shutdown stops the loop
            "\n",
        );
        let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Sink(Arc<Mutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut input = io::Cursor::new(script.as_bytes().to_vec());
        serve_lines(
            &svc,
            &mut input,
            Box::new(Sink(Arc::clone(&out))),
            &ShutdownFlag::new(),
        )
        .unwrap();
        let text = String::from_utf8(out.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert_eq!(lines[0], r#"{"id":1,"ok":true,"pong":true}"#);
        // The ping plus the stats request itself have both drained.
        assert!(lines[1].contains("\"serve.requests\":2"), "{}", lines[1]);
        assert_eq!(lines[2], r#"{"id":3,"ok":true,"shutting_down":true}"#);
    }
}
