//! Minimal hand-rolled JSON: a parsed [`Json`] value, a recursive-descent
//! parser, and a canonical emitter. The build environment has no
//! serialization crates (workspace zero-dependency policy), and the rest
//! of the workspace only *emits* JSON; the compile service is the first
//! component that must also *parse* untrusted JSON, so the parser is
//! defensive: depth-limited, allocation-bounded by the input length, and
//! it never panics on any byte sequence (a fuzz test in this module holds
//! it to that).

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts; deeper input is rejected
/// (protects the stack against `[[[[...` bombs on untrusted frames).
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Object member order is preserved (the protocol
/// never relies on it, but it keeps emitted round-trips stable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; protocol ids stay exact below
    /// 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in member order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON value, requiring it to span the whole input
    /// (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a one-line message with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects fractions,
    /// negatives, and values above 2^53 where `f64` loses exactness).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The numeric payload as an integer (rejects fractions and values
    /// outside ±2^53).
    pub fn as_i64(&self) -> Option<i64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
            Some(n as i64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Emits the value as compact JSON (member order preserved, `f64` via
    /// Rust's shortest-roundtrip `Display`, integers without a fraction).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(k));
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes a string as a JSON string literal (same convention as the
/// `gcomm-obs` report emitter).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte 0x{b:02x} at offset {}", self.pos)),
            None => Err(format!("unexpected end of input at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number '{text}' at offset {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number at offset {start}"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err("bad low surrogate".into());
                                    }
                                    let combined = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| "bad \\u escape".to_string())?);
                        }
                        _ => return Err(format!("bad escape '\\{}'", esc as char)),
                    }
                }
                b if b < 0x20 => {
                    return Err(format!(
                        "raw control byte 0x{b:02x} in string at offset {}",
                        self.pos - 1
                    ));
                }
                _ => {
                    // Re-scan the raw UTF-8 run up to the next quote or
                    // backslash in one go.
                    let run_start = self.pos - 1;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        if b < 0x20 {
                            return Err(format!(
                                "raw control byte 0x{b:02x} in string at offset {}",
                                self.pos
                            ));
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[run_start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err("truncated \\u escape".into());
            };
            self.pos += 1;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| "bad hex digit in \\u escape".to_string())?;
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-3").unwrap().as_i64(), Some(-3));
        assert_eq!(Json::parse("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_structures_and_roundtrips() {
        let text = r#"{"op":"compile","id":7,"nested":{"a":[1,2,3],"b":null},"ok":true}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("compile"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.to_json(), text);
    }

    #[test]
    fn parses_escapes() {
        let v = Json::parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA\u{e9}"));
        // Surrogate pair.
        let v = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        for s in [
            "",
            "plain",
            "q\"q",
            "b\\b",
            "n\nn",
            "tab\tx",
            "\u{1}",
            "é€😀",
        ] {
            let lit = escape(s);
            assert_eq!(Json::parse(&lit).unwrap().as_str(), Some(s), "{lit}");
        }
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "nul",
            "01x",
            "\"unterminated",
            "{\"a\":1,}",
            "[1 2]",
            "--1",
            "1.2.3",
            "\u{0}",
            "{\"k\":\"\u{7}\"}",
            "NaN",
            "Infinity",
            "\"\\u12\"",
            "\"\\q\"",
            "\"\\ud800x\"",
            "[1]]",
            "5 5",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH / 2) + &"]".repeat(MAX_DEPTH / 2);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn fuzzes_random_bytes_without_panicking() {
        // Splitmix-style deterministic byte soup; the parser must reject or
        // accept, never panic.
        let mut state = 0x5eed_cafe_u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z ^ (z >> 31)
        };
        for _ in 0..2000 {
            let len = (next() % 64) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| (next() % 256) as u8).collect();
            let text = String::from_utf8_lossy(&bytes).into_owned();
            let _ = Json::parse(&text);
        }
        // Structured soup from protocol-ish fragments.
        let frags = [
            "{", "}", "[", "]", ",", ":", "\"op\"", "1", "null", "\\", "\"",
        ];
        for _ in 0..2000 {
            let n = (next() % 12) as usize;
            let text: String = (0..n)
                .map(|_| frags[(next() % frags.len() as u64) as usize])
                .collect();
            let _ = Json::parse(&text);
        }
    }

    #[test]
    fn integer_bounds() {
        assert_eq!(
            Json::parse("9007199254740992").unwrap().as_u64(),
            Some(1 << 53)
        );
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e300").unwrap().as_u64(), None);
    }
}
