//! One shard as seen by the router: its address, shared health state, and
//! a small pool of framed connections with hard read/write deadlines.
//!
//! Every socket the router opens toward a shard carries
//! `set_read_timeout`/`set_write_timeout` deadlines, so a hung shard can
//! never hang a router worker — the worst case is one deadline, after
//! which the failure feeds the health machine and the retry path.
//!
//! Forwarding is verbatim: the router writes the client's request bytes
//! and relays the shard's response bytes untouched. That is the whole
//! bit-identity argument — the cluster cannot alter a payload it never
//! re-renders (and cached payloads already exclude request ids).

use std::fmt;
use std::io::{self, ErrorKind};
use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::Duration;

use crate::client::Client;

use super::health::HealthCell;

/// Why a forward failed. Every variant is retryable on a replica.
#[derive(Debug)]
pub enum ForwardError {
    /// Could not connect (refused, unreachable, connect deadline).
    Connect(io::Error),
    /// The connection died mid-frame or at an unexpected boundary — the
    /// peer was killed or dropped us. Counted as `cluster.conn_lost`.
    ConnLost,
    /// A read/write deadline expired (the shard is up but stalled).
    TimedOut,
    /// Any other transport failure.
    Io(io::Error),
}

impl fmt::Display for ForwardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForwardError::Connect(e) => write!(f, "connect failed: {e}"),
            ForwardError::ConnLost => write!(f, "connection lost"),
            ForwardError::TimedOut => write!(f, "deadline expired"),
            ForwardError::Io(e) => write!(f, "{e}"),
        }
    }
}

fn classify(e: io::Error) -> ForwardError {
    match e.kind() {
        ErrorKind::TimedOut | ErrorKind::WouldBlock => ForwardError::TimedOut,
        ErrorKind::ConnectionAborted
        | ErrorKind::ConnectionReset
        | ErrorKind::BrokenPipe
        | ErrorKind::UnexpectedEof => ForwardError::ConnLost,
        _ => ForwardError::Io(e),
    }
}

/// Router-side handle to one shard process.
///
/// The address is interior-mutable: when a supervisor respawns a dead
/// shard process, the replacement binds a fresh ephemeral port and the
/// router re-points this slot at it ([`Shard::set_addr`]) without
/// touching the ring — slot index, not address, is the ring identity.
#[derive(Debug)]
pub struct Shard {
    /// The shard's serve address (swapped on respawn).
    addr: Mutex<SocketAddr>,
    /// Shared up/down state (probe + forward outcomes feed it).
    pub health: HealthCell,
    /// Idle framed connections, deadline-armed, reused across requests.
    idle: Mutex<Vec<Client>>,
}

/// Idle connections kept per shard; beyond this they are closed instead
/// of pooled.
const POOL_CAP: usize = 8;

impl Shard {
    /// A shard handle with an empty connection pool.
    pub fn new(addr: SocketAddr) -> Shard {
        Shard {
            addr: Mutex::new(addr),
            health: HealthCell::default(),
            idle: Mutex::new(Vec::new()),
        }
    }

    /// The shard's current serve address.
    pub fn addr(&self) -> SocketAddr {
        *self.addr.lock().unwrap()
    }

    /// Re-points this slot at a respawned process. Pooled connections to
    /// the old address are stale by definition and dropped.
    pub fn set_addr(&self, addr: SocketAddr) {
        *self.addr.lock().unwrap() = addr;
        self.drop_idle();
    }

    fn connect(
        &self,
        connect_timeout: Duration,
        io_timeout: Duration,
    ) -> Result<Client, ForwardError> {
        let addr = self.addr();
        let mut c =
            Client::connect_timeout(&addr, connect_timeout).map_err(ForwardError::Connect)?;
        c.set_io_timeout(Some(io_timeout))
            .map_err(ForwardError::Io)?;
        Ok(c)
    }

    fn checkout(
        &self,
        connect_timeout: Duration,
        io_timeout: Duration,
    ) -> Result<(Client, bool), ForwardError> {
        if let Some(c) = self.idle.lock().unwrap().pop() {
            return Ok((c, true));
        }
        self.connect(connect_timeout, io_timeout)
            .map(|c| (c, false))
    }

    fn checkin(&self, c: Client) {
        let mut idle = self.idle.lock().unwrap();
        if idle.len() < POOL_CAP {
            idle.push(c);
        }
    }

    /// Drops every pooled connection (used when the shard is marked down
    /// so recovery starts from fresh sockets).
    pub fn drop_idle(&self) {
        self.idle.lock().unwrap().clear();
    }

    /// Sends one request verbatim and returns the shard's response bytes
    /// verbatim. A failure on a *reused* pooled connection (the shard may
    /// have closed it while idle) is transparently retried once on a
    /// fresh socket — requests are idempotent (compiles are pure), so the
    /// single resend cannot duplicate work observably.
    ///
    /// # Errors
    ///
    /// A classified [`ForwardError`]; the failed connection is dropped,
    /// never pooled again.
    pub fn forward(
        &self,
        text: &str,
        connect_timeout: Duration,
        io_timeout: Duration,
    ) -> Result<String, ForwardError> {
        let (mut client, reused) = self.checkout(connect_timeout, io_timeout)?;
        match Self::roundtrip(&mut client, text) {
            Ok(resp) => {
                self.checkin(client);
                Ok(resp)
            }
            Err(_) if reused => {
                // The pooled socket was stale; one fresh attempt.
                let mut fresh = self.connect(connect_timeout, io_timeout)?;
                let resp = Self::roundtrip(&mut fresh, text)?;
                self.checkin(fresh);
                Ok(resp)
            }
            Err(e) => Err(e),
        }
    }

    fn roundtrip(client: &mut Client, text: &str) -> Result<String, ForwardError> {
        client.send(text).map_err(classify)?;
        match client.recv() {
            Ok(Some(resp)) => Ok(resp),
            // EOF at a frame boundary after a request was sent still means
            // the peer abandoned this request.
            Ok(None) => Err(ForwardError::ConnLost),
            Err(e) => Err(classify(e)),
        }
    }

    /// Liveness probe: one `ping` round-trip on a fresh socket (never a
    /// pooled one — the probe must test the shard, not our cache of it).
    pub fn ping(&self, connect_timeout: Duration, io_timeout: Duration) -> bool {
        let Ok(mut c) = self.connect(connect_timeout, io_timeout) else {
            return false;
        };
        matches!(
            Self::roundtrip(&mut c, r#"{"op":"ping","id":0}"#),
            Ok(resp) if resp.contains("\"pong\":true")
        )
    }
}
