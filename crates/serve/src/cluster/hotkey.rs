//! Sliding-window hot-key detection.
//!
//! The router records every routed compile key; a key whose hit count
//! inside the current window reaches the threshold is **hot** and worth
//! replicating to the next shard on the ring, so the death of its primary
//! does not cold-start the most popular programs. Windows are tracked
//! per key (count + window start): a hit after the window expired starts
//! a fresh window, so stale popularity decays by construction.
//!
//! Memory is bounded: past `capacity` tracked keys, expired windows are
//! swept; if everything is still live the whole table resets (losing
//! heat, never correctness — replication is purely an optimization).

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
struct Window {
    count: u32,
    start: Instant,
}

/// Shared hot-key tracker (one per router).
#[derive(Debug)]
pub struct HotKeys {
    window: Duration,
    threshold: u32,
    capacity: usize,
    inner: Mutex<HashMap<u64, Window>>,
}

impl HotKeys {
    /// A tracker flagging keys hit at least `threshold` times within
    /// `window` (threshold min 1), remembering at most `capacity` keys.
    pub fn new(window: Duration, threshold: u32, capacity: usize) -> HotKeys {
        HotKeys {
            window,
            threshold: threshold.max(1),
            capacity: capacity.max(16),
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Records a hit on `key` at `now`; true when the key is hot as of
    /// this hit (count within the live window reached the threshold).
    pub fn record(&self, key: u64, now: Instant) -> bool {
        let mut map = self.inner.lock().unwrap();
        if map.len() >= self.capacity && !map.contains_key(&key) {
            let window = self.window;
            map.retain(|_, w| now.duration_since(w.start) <= window);
            if map.len() >= self.capacity {
                map.clear();
            }
        }
        let w = map.entry(key).or_insert(Window {
            count: 0,
            start: now,
        });
        if now.duration_since(w.start) > self.window {
            // The old window expired: this hit opens a fresh one.
            *w = Window {
                count: 0,
                start: now,
            };
        }
        w.count = w.count.saturating_add(1);
        w.count >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_after_threshold_hits_within_the_window() {
        let hk = HotKeys::new(Duration::from_secs(10), 3, 1024);
        let t0 = Instant::now();
        assert!(!hk.record(7, t0));
        assert!(!hk.record(7, t0 + Duration::from_millis(10)));
        assert!(hk.record(7, t0 + Duration::from_millis(20)));
        // And stays hot while the window lives.
        assert!(hk.record(7, t0 + Duration::from_millis(30)));
        // Other keys are independent.
        assert!(!hk.record(8, t0));
    }

    #[test]
    fn an_expired_window_restarts_the_count() {
        let hk = HotKeys::new(Duration::from_millis(100), 2, 1024);
        let t0 = Instant::now();
        assert!(!hk.record(1, t0));
        // Second hit lands after the window: cold again.
        assert!(!hk.record(1, t0 + Duration::from_millis(250)));
        assert!(hk.record(1, t0 + Duration::from_millis(260)));
    }

    #[test]
    fn capacity_bound_holds_and_live_keys_survive_a_sweep() {
        let hk = HotKeys::new(Duration::from_secs(60), 2, 16);
        let t0 = Instant::now();
        hk.record(999, t0);
        for i in 0..200u64 {
            hk.record(i, t0 + Duration::from_millis(i));
        }
        assert!(hk.inner.lock().unwrap().len() <= 16, "capacity exceeded");
        // Threshold semantics still work after the resets.
        let key = 5000;
        assert!(!hk.record(key, t0 + Duration::from_secs(1)));
        assert!(hk.record(key, t0 + Duration::from_secs(1)));
    }
}
