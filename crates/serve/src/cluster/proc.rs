//! Shard child-process management for `gcommc cluster`: spawn a
//! `gcommc serve` process per shard, learn its ephemeral address from the
//! startup banner, and take it down — gracefully via the protocol's
//! `shutdown` op, or hard (SIGKILL) for chaos testing.

use std::io::{self, BufRead, BufReader, Read};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use crate::client::Client;

/// One spawned shard process and its serve address. The spawn command
/// line is retained so a supervisor can [`ShardProc::respawn`] the same
/// shard — same flags, same `--persist` directory — after a crash.
#[derive(Debug)]
pub struct ShardProc {
    child: Child,
    addr: SocketAddr,
    program: String,
    args: Vec<String>,
}

impl ShardProc {
    /// Spawns `program serve --addr 127.0.0.1:0 <extra_args>` and waits
    /// for its `serving on <addr>` banner on stderr. The rest of the
    /// child's stderr is drained by a detached thread so the pipe can
    /// never fill up and stall the shard.
    ///
    /// The banner is printed only after the service is fully open — in
    /// particular after a `--persist` recovery scan has completed — so a
    /// returned `ShardProc` is already past recovery.
    ///
    /// # Errors
    ///
    /// Propagates the spawn failure; fails with `InvalidData` when the
    /// child exits (or closes stderr) before announcing an address.
    pub fn spawn(program: &str, extra_args: &[&str]) -> io::Result<ShardProc> {
        let args: Vec<String> = extra_args.iter().map(|s| (*s).to_string()).collect();
        let (child, addr) = spawn_child(program, &args)?;
        Ok(ShardProc {
            child,
            addr,
            program: program.to_string(),
            args,
        })
    }

    /// The shard's serve address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shard's process id (for external signalling in tests).
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Whether the child has exited (crashed, was killed, or shut down).
    /// Non-blocking; a wait error is treated as exited.
    pub fn has_exited(&mut self) -> bool {
        !matches!(self.child.try_wait(), Ok(None))
    }

    /// Replaces a dead child with a fresh process running the same
    /// command line, and returns the new serve address (the replacement
    /// binds its own ephemeral port). Any still-running old child is
    /// killed and reaped first, so this never leaks a process.
    ///
    /// # Errors
    ///
    /// Propagates the spawn/banner failure; `self` keeps its old (dead)
    /// child so the caller can simply retry.
    pub fn respawn(&mut self) -> io::Result<SocketAddr> {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let (child, addr) = spawn_child(&self.program, &self.args)?;
        self.child = child;
        self.addr = addr;
        Ok(addr)
    }

    /// Hard-kills the shard (SIGKILL) and reaps it. Idempotent enough for
    /// chaos tests: errors from an already-dead child are ignored.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Asks the shard to drain and exit via the protocol's `shutdown` op,
    /// then reaps it. Falls back to a kill when the shard cannot be
    /// reached or does not exit.
    ///
    /// # Errors
    ///
    /// Propagates the wait failure.
    pub fn shutdown_graceful(&mut self, timeout: Duration) -> io::Result<()> {
        let reachable = Client::connect_timeout(&self.addr, timeout)
            .and_then(|mut c| {
                c.set_io_timeout(Some(timeout))?;
                c.request(r#"{"op":"shutdown","id":0}"#)
            })
            .is_ok();
        if !reachable {
            self.kill();
            return self.child.wait().map(|_| ());
        }
        // The shard drains accepted work before exiting; poll for it.
        let deadline = std::time::Instant::now() + timeout.max(Duration::from_secs(5));
        loop {
            if self.child.try_wait()?.is_some() {
                return Ok(());
            }
            if std::time::Instant::now() >= deadline {
                self.kill();
                return Ok(());
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for ShardProc {
    fn drop(&mut self) {
        // Never leak a child process, even on panic paths in tests.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns one serve child and performs the banner handshake.
fn spawn_child(program: &str, args: &[String]) -> io::Result<(Child, SocketAddr)> {
    let mut child = Command::new(program)
        .arg("serve")
        .arg("--addr")
        .arg("127.0.0.1:0")
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()?;
    let stderr = child.stderr.take().expect("stderr was piped");
    let mut reader = BufReader::new(stderr);
    let addr = match read_banner_addr(&mut reader) {
        Ok(addr) => addr,
        Err(e) => {
            let _ = child.kill();
            let _ = child.wait();
            return Err(e);
        }
    };
    // Keep draining so the shard never blocks writing diagnostics.
    std::thread::spawn(move || {
        let mut sink = io::sink();
        let _ = io::copy(&mut reader, &mut sink);
    });
    Ok((child, addr))
}

/// Reads stderr lines until the `serving on <addr>` banner appears.
fn read_banner_addr(reader: &mut BufReader<impl Read>) -> io::Result<SocketAddr> {
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "shard exited before announcing its address",
            ));
        }
        if let Some(rest) = line.split("serving on ").nth(1) {
            let addr_text = rest.split_whitespace().next().unwrap_or("");
            if let Ok(addr) = addr_text.parse::<SocketAddr>() {
                return Ok(addr);
            }
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unparseable serve banner: {}", line.trim()),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banner_parsing_extracts_the_address() {
        let text = "warming up\ngcommc: serving on 127.0.0.1:4567 (8 jobs)\n";
        let mut r = BufReader::new(text.as_bytes());
        assert_eq!(
            read_banner_addr(&mut r).unwrap(),
            "127.0.0.1:4567".parse::<SocketAddr>().unwrap()
        );
    }

    #[test]
    fn missing_banner_is_a_clean_error() {
        let mut r = BufReader::new("no banner here\n".as_bytes());
        let err = read_banner_addr(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
