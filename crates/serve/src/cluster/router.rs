//! The cluster router: accepts the same framed protocol as a single
//! `gcomm-serve` shard, consistent-hashes each request's cache key to a
//! shard, and relays request and response bytes verbatim.
//!
//! ## Failure path
//!
//! Per request the router walks the key's ring successors (primary, then
//! replicas), preferring shards the health machine considers up. Each
//! failed forward feeds the health machine, counts `cluster.retry`, and
//! backs off on the wall clock via [`RetryPolicy::backoff_wall`] —
//! exponential with jitter, the PR 1 fault machinery pointed at real
//! sockets. When the attempt budget is exhausted the client receives a
//! structured `unavailable` error — never a hang (every socket carries
//! deadlines) and never a relayed partial frame (a mid-frame death is a
//! classified `ConnLost`, counted under `cluster.conn_lost`).
//!
//! ## Bit-identity
//!
//! Compile responses are relayed without re-rendering, and the cached
//! payload of a compile is a pure function of its cache key with the
//! request id excluded (PR 5). So whichever shard answers — primary cold,
//! primary warm, replica after failover — the bytes equal a single-node
//! `gcomm-serve` response to the same request, by construction.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use gcomm_machine::fault::Rng64;
use gcomm_obs::Registry;
use gcomm_par::{Pool, PoolHandle, SubmitError};

use crate::cache::fnv1a;
use crate::frame::{read_frame, skip_payload, write_frame, FrameError};
use crate::json::{escape, Json};
use crate::protocol::{assemble, cache_key_material, error_response, Request, PROTOCOL};
use crate::server::ShutdownFlag;
use crate::service::stats_payload;
use crate::VERSION;

use super::health::Transition;
use super::hotkey::HotKeys;
use super::ring::Ring;
use super::shard::{ForwardError, Shard};
use super::ClusterConfig;

/// Replication jobs queued ahead of the replication worker; beyond this
/// the hint is dropped (replication is an optimization, never load).
const REPLICATION_QUEUE: usize = 256;

/// Shared state of a running router.
struct Core {
    shards: Arc<Vec<Shard>>,
    ring: Ring,
    cfg: ClusterConfig,
    lifetime: Registry,
    hot: HotKeys,
    repl_tx: Mutex<Option<SyncSender<(usize, String)>>>,
}

impl Core {
    fn count(&self, name: &str, v: u64) {
        self.lifetime.add(name, v);
    }

    fn record_transition(&self, t: Option<Transition>, shard: &Shard) {
        match t {
            Some(Transition::MarkedDown) => {
                self.count("cluster.marked_down", 1);
                // Pooled sockets to a dead shard are stale by definition.
                shard.drop_idle();
            }
            Some(Transition::MarkedUp) => self.count("cluster.marked_up", 1),
            None => {}
        }
    }

    /// The target of the `attempt`-th try (1-based): up candidates in
    /// ring order, rotated by attempt; when everything is marked down,
    /// all candidates in ring order (a down mark is a hint, not a veto —
    /// the last word belongs to an actual connection attempt).
    fn choose(&self, order: &[usize], attempt: u32) -> usize {
        let up: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&s| self.shards[s].health.is_up())
            .collect();
        let list: &[usize] = if up.is_empty() { order } else { &up };
        list[(attempt as usize - 1) % list.len()]
    }

    /// Forwards one request to the ring, with retry/backoff/failover.
    /// Always returns a complete response — the shard's bytes verbatim,
    /// or a structured `unavailable` error.
    fn route(&self, hash: u64, text: &str, id: Option<u64>) -> String {
        self.count("cluster.requests", 1);
        let order = self.ring.successors(hash, 1 + self.cfg.replicas);
        let mut rng = Rng64::new(self.cfg.seed ^ hash);
        let attempts = self.cfg.retry.attempts();
        for attempt in 1..=attempts {
            let target = self.choose(&order, attempt);
            let shard = &self.shards[target];
            if attempt > 1 {
                self.count("cluster.retry", 1);
            }
            match shard.forward(text, self.cfg.connect_timeout, self.cfg.io_timeout) {
                Ok(resp) => {
                    self.record_transition(shard.health.record_success(&self.cfg.health), shard);
                    if target == order[0] {
                        self.replicate_if_hot(hash, text, &order);
                    } else {
                        // Served by a ring successor instead of the
                        // key's primary — the failover path worked.
                        self.count("cluster.failover", 1);
                        self.count("cluster.replica_hit", 1);
                    }
                    return resp;
                }
                Err(e) => {
                    if matches!(e, ForwardError::ConnLost) {
                        self.count("cluster.conn_lost", 1);
                    }
                    self.record_transition(shard.health.record_failure(&self.cfg.health), shard);
                    if attempt < attempts {
                        std::thread::sleep(self.cfg.retry.backoff_wall(
                            self.cfg.retry_base,
                            self.cfg.retry_cap,
                            attempt,
                            &mut rng,
                        ));
                    }
                }
            }
        }
        self.count("serve.unavailable", 1);
        error_response(
            id,
            "unavailable",
            "no shard could serve the request (all attempts failed)",
        )
    }

    /// Replication hook: on a primary-served request whose key just
    /// crossed the hot threshold, enqueue a copy for the next shard on
    /// the ring. Fire-and-forget — a full queue drops the hint.
    fn replicate_if_hot(&self, hash: u64, text: &str, order: &[usize]) {
        if self.cfg.replicas == 0 || order.len() < 2 {
            return;
        }
        if !self.hot.record(hash, Instant::now()) {
            return;
        }
        let replica = order[1];
        if !self.shards[replica].health.is_up() {
            return;
        }
        if let Some(tx) = self.repl_tx.lock().unwrap().as_ref() {
            match tx.try_send((replica, text.to_string())) {
                Ok(()) | Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {}
            }
        }
    }
}

/// A clonable readmission handle for shard supervisors: when a dead
/// shard process has been respawned (on a fresh ephemeral port) and its
/// recovery scan and health probe have passed, [`Admission::readmit`]
/// re-points the shard's ring slot at the new address.
///
/// Readmission does **not** force the health state to up — the slot stays
/// down until the router's own prober has seen `up_threshold` consecutive
/// successes against the new address, so a respawn that immediately
/// wedges never attracts primary traffic.
#[derive(Clone)]
pub struct Admission {
    core: Arc<Core>,
}

impl Admission {
    /// Number of shard slots in the ring (slot indices are `0..count`).
    pub fn shard_count(&self) -> usize {
        self.core.shards.len()
    }

    /// The current address of slot `shard`.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn shard_addr(&self, shard: usize) -> SocketAddr {
        self.core.shards[shard].addr()
    }

    /// Re-points slot `shard` at `addr`, drops its stale connection pool,
    /// counts `cluster.respawn`, and records a structured
    /// `cluster.respawn` event in the router's lifetime registry.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn readmit(&self, shard: usize, addr: SocketAddr) {
        self.core.shards[shard].set_addr(addr);
        self.core.count("cluster.respawn", 1);
        self.core
            .lifetime
            .push_event("cluster.respawn", &format!("shard {shard} -> {addr}"));
    }
}

/// Mutex-serialized framed response sink (worker and reader writes must
/// never interleave bytes). Write failures mean the client went away; the
/// reader notices on its next read.
struct FrameWriter {
    w: Mutex<TcpStream>,
}

impl FrameWriter {
    fn send(&self, response: &str) {
        let mut w = self.w.lock().unwrap();
        let _ = write_frame(&mut *w, response.as_bytes());
    }
}

/// Handles one parsed-or-not request text on a reader thread: management
/// ops inline, routable work submitted to the pool.
fn dispatch(
    core: &Arc<Core>,
    pool: &PoolHandle,
    writer: &Arc<FrameWriter>,
    shutdown: &ShutdownFlag,
    text: &str,
) {
    core.count("serve.requests", 1);
    let parsed = Json::parse(text)
        .map_err(|e| (None, format!("invalid JSON: {e}")))
        .and_then(|v| Request::parse(&v));
    let req = match parsed {
        Ok(r) => r,
        Err((id, msg)) => {
            core.count("serve.errors", 1);
            writer.send(&error_response(id, "bad_request", &msg));
            return;
        }
    };
    match req {
        Request::Compile(c) => {
            // Route by the same key material the shard caches under, so
            // every repeat of a source lands on the shard whose LRU is
            // hot for it (ids are excluded by construction).
            let effective = c.budget.unwrap_or(core.cfg.default_budget);
            let hash = fnv1a(cache_key_material(&c, &effective).as_bytes());
            submit_route(core, pool, writer, hash, text.to_string(), c.id);
        }
        Request::Sleep { id, .. } => {
            // Load-testing aid: spread sleeps over the ring by raw text.
            let hash = fnv1a(text.as_bytes());
            submit_route(core, pool, writer, hash, text.to_string(), id);
        }
        Request::Stats { id, stable } => {
            writer.send(&assemble(
                id,
                &stats_payload(&core.lifetime.snapshot(), stable),
            ));
        }
        Request::Version { id } => {
            writer.send(&assemble(
                id,
                &format!(
                    "\"ok\":true,\"version\":{},\"protocol\":{},\"shards\":{}",
                    escape(VERSION),
                    escape(PROTOCOL),
                    core.shards.len()
                ),
            ));
        }
        Request::Ping { id } => writer.send(&assemble(id, "\"ok\":true,\"pong\":true")),
        Request::Shutdown { id } => {
            writer.send(&assemble(id, "\"ok\":true,\"shutting_down\":true"));
            shutdown.request();
        }
    }
}

fn submit_route(
    core: &Arc<Core>,
    pool: &PoolHandle,
    writer: &Arc<FrameWriter>,
    hash: u64,
    text: String,
    id: Option<u64>,
) {
    let core2 = Arc::clone(core);
    let wr = Arc::clone(writer);
    match pool.try_submit(move || {
        let resp = core2.route(hash, &text, id);
        wr.send(&resp);
    }) {
        Ok(()) => {}
        Err(SubmitError::Full) => {
            core.count("serve.overloaded", 1);
            writer.send(&error_response(
                id,
                "overloaded",
                "router queue is full, retry later",
            ));
        }
        Err(SubmitError::Closed) => {
            writer.send(&error_response(id, "shutting_down", "router is draining"));
        }
    }
}

/// Reads frames off one client connection until EOF, resynchronizing
/// after oversized frames exactly like a single-node shard.
fn serve_connection(
    core: &Arc<Core>,
    pool: &PoolHandle,
    stream: TcpStream,
    shutdown: &ShutdownFlag,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(FrameWriter {
        w: Mutex::new(write_half),
    });
    let max_frame = core.cfg.max_frame;
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader, max_frame) {
            Ok(Some(payload)) => {
                let text = String::from_utf8_lossy(&payload).into_owned();
                dispatch(core, pool, &writer, shutdown, &text);
            }
            Ok(None) => break,
            Err(FrameError::TooLarge { declared }) => {
                core.count("serve.requests", 1);
                core.count("serve.errors", 1);
                writer.send(&error_response(
                    None,
                    "too_large",
                    &format!("declared frame of {declared} bytes exceeds {max_frame}"),
                ));
                if skip_payload(&mut reader, declared).is_err() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// A bound-but-not-yet-running cluster router.
pub struct Router {
    listener: TcpListener,
    core: Arc<Core>,
    shutdown: ShutdownFlag,
    repl_rx: Receiver<(usize, String)>,
}

impl Router {
    /// Binds `addr` and attaches the given shard addresses (which may be
    /// spawned processes, attached external servers, or in-process test
    /// servers — the router only ever sees their sockets).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure; rejects an empty shard list.
    pub fn bind(addr: &str, shard_addrs: &[SocketAddr], cfg: ClusterConfig) -> io::Result<Router> {
        if shard_addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a cluster needs at least one shard",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let shutdown = ShutdownFlag::new();
        shutdown.set_wake_addr(listener.local_addr()?);
        let shards: Arc<Vec<Shard>> =
            Arc::new(shard_addrs.iter().map(|&a| Shard::new(a)).collect());
        let ring = Ring::new(shards.len(), cfg.vnodes);
        let (tx, rx) = std::sync::mpsc::sync_channel(REPLICATION_QUEUE);
        let hot = HotKeys::new(cfg.hot_window, cfg.hot_threshold, cfg.hot_capacity);
        Ok(Router {
            listener,
            core: Arc::new(Core {
                shards,
                ring,
                cfg,
                lifetime: Registry::new(),
                hot,
                repl_tx: Mutex::new(Some(tx)),
            }),
            shutdown,
            repl_rx: rx,
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops this router when requested.
    pub fn shutdown_flag(&self) -> ShutdownFlag {
        self.shutdown.clone()
    }

    /// The router's lifetime stats registry (cluster counters).
    pub fn registry(&self) -> Registry {
        self.core.lifetime.clone()
    }

    /// A readmission handle for a shard supervisor (see
    /// [`super::supervise`]).
    pub fn admission(&self) -> Admission {
        Admission {
            core: Arc::clone(&self.core),
        }
    }

    /// Accepts and serves connections until shutdown, then drains: every
    /// accepted request is answered (forwarded or failed structurally)
    /// before `run` returns; the prober and replication worker are joined
    /// last.
    ///
    /// # Errors
    ///
    /// Currently infallible after a successful bind (mirrors
    /// [`crate::server::Server::run`]).
    pub fn run(self) -> io::Result<()> {
        let core = self.core;
        let pool = Pool::new(core.cfg.jobs, core.cfg.queue_cap);
        let prober = spawn_prober(Arc::clone(&core), self.shutdown.clone());
        let repl = spawn_replicator(Arc::clone(&core), self.repl_rx);
        let conns: Mutex<Vec<TcpStream>> = Mutex::new(Vec::new());
        let mut threads: Vec<JoinHandle<()>> = Vec::new();
        for incoming in self.listener.incoming() {
            if self.shutdown.is_set() {
                break;
            }
            let Ok(stream) = incoming else { continue };
            let _ = stream.set_nodelay(true);
            if let Ok(clone) = stream.try_clone() {
                conns.lock().unwrap().push(clone);
            }
            let core2 = Arc::clone(&core);
            let handle = pool.handle();
            let shutdown = self.shutdown.clone();
            threads.push(std::thread::spawn(move || {
                serve_connection(&core2, &handle, stream, &shutdown);
            }));
        }
        // Drain: every accepted forward still runs and its response is
        // written (client sockets are still open here).
        pool.shutdown();
        for s in conns.lock().unwrap().iter() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        for t in threads {
            let _ = t.join();
        }
        // Connection threads are joined: nothing can enqueue replication
        // work anymore. Dropping the sender lets the worker drain out.
        core.repl_tx.lock().unwrap().take();
        let _ = repl.join();
        let _ = prober.join();
        Ok(())
    }
}

/// Background liveness prober: pings every shard each interval with the
/// existing `ping` op and feeds the health machine.
fn spawn_prober(core: Arc<Core>, shutdown: ShutdownFlag) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut last = Instant::now() - core.cfg.check_interval;
        while !shutdown.is_set() {
            if last.elapsed() >= core.cfg.check_interval {
                last = Instant::now();
                for shard in core.shards.iter() {
                    let alive = shard.ping(core.cfg.connect_timeout, core.cfg.check_timeout);
                    let t = if alive {
                        shard.health.record_success(&core.cfg.health)
                    } else {
                        shard.health.record_failure(&core.cfg.health)
                    };
                    core.record_transition(t, shard);
                }
            }
            // Sleep in short slices so shutdown never waits a full
            // interval on the prober.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    })
}

/// Replication worker: forwards hot-key copies to their ring successor,
/// warming the replica's cache off the request path.
fn spawn_replicator(core: Arc<Core>, rx: Receiver<(usize, String)>) -> JoinHandle<()> {
    let shards = Arc::clone(&core.shards);
    std::thread::spawn(move || {
        while let Ok((idx, text)) = rx.recv() {
            let shard = &shards[idx];
            if shard
                .forward(&text, core.cfg.connect_timeout, core.cfg.io_timeout)
                .is_ok()
            {
                core.count("cluster.replicated", 1);
            }
        }
    })
}

/// A running router on its own thread (the test/bench entry point).
pub struct RouterHandle {
    addr: SocketAddr,
    lifetime: Registry,
    shutdown: ShutdownFlag,
    admission: Admission,
    thread: JoinHandle<io::Result<()>>,
}

impl RouterHandle {
    /// The router's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router's lifetime stats registry.
    pub fn registry(&self) -> &Registry {
        &self.lifetime
    }

    /// A readmission handle for a shard supervisor.
    pub fn admission(&self) -> Admission {
        self.admission.clone()
    }

    /// The router's shutdown flag (shared with supervisors so both wind
    /// down together).
    pub fn shutdown_flag(&self) -> ShutdownFlag {
        self.shutdown.clone()
    }

    /// Requests shutdown and waits for the full drain.
    ///
    /// # Errors
    ///
    /// Propagates the router loop's error.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the router thread.
    pub fn stop(self) -> io::Result<()> {
        self.shutdown.request();
        self.thread.join().expect("router thread panicked")
    }
}

/// Binds `addr` and runs the router on a background thread.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn spawn_router(
    addr: &str,
    shard_addrs: &[SocketAddr],
    cfg: ClusterConfig,
) -> io::Result<RouterHandle> {
    let router = Router::bind(addr, shard_addrs, cfg)?;
    let addr = router.local_addr()?;
    let lifetime = router.registry();
    let shutdown = router.shutdown_flag();
    let admission = router.admission();
    let thread = std::thread::spawn(move || router.run());
    Ok(RouterHandle {
        addr,
        lifetime,
        shutdown,
        admission,
        thread,
    })
}
