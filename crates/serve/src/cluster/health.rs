//! Shard health: a failure-threshold state machine fed by both the
//! background ping prober and the forwarding path itself.
//!
//! A shard starts `Up`. `fail_threshold` **consecutive** failures
//! (refused connects, I/O timeouts, mid-frame deaths, bad pongs) mark it
//! `Down`; `up_threshold` consecutive successes mark it `Up` again. One
//! success resets the failure streak and vice versa, so a flapping shard
//! needs a clean streak to transition — a single lucky ping does not
//! resurrect a dying shard when `up_threshold > 1`.
//!
//! The cell is shared between the router's worker threads and the prober;
//! transitions are returned to the caller exactly once so the router can
//! count `cluster.marked_down` / `cluster.marked_up` without double
//! counting.

use std::sync::Mutex;

/// Thresholds of the up/down state machine.
#[derive(Debug, Clone, Copy)]
pub struct HealthPolicy {
    /// Consecutive failures that mark an `Up` shard `Down` (min 1).
    pub fail_threshold: u32,
    /// Consecutive successes that mark a `Down` shard `Up` (min 1).
    pub up_threshold: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            fail_threshold: 2,
            up_threshold: 2,
        }
    }
}

/// A state transition that just happened (report it exactly once).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// The shard crossed the failure threshold.
    MarkedDown,
    /// The shard crossed the recovery threshold.
    MarkedUp,
}

#[derive(Debug)]
struct State {
    up: bool,
    streak_failures: u32,
    streak_successes: u32,
}

/// One shard's shared health state.
#[derive(Debug)]
pub struct HealthCell {
    state: Mutex<State>,
}

impl Default for HealthCell {
    fn default() -> Self {
        HealthCell {
            state: Mutex::new(State {
                up: true,
                streak_failures: 0,
                streak_successes: 0,
            }),
        }
    }
}

impl HealthCell {
    /// True while the shard is considered routable.
    pub fn is_up(&self) -> bool {
        self.state.lock().unwrap().up
    }

    /// Records a successful probe or forward.
    pub fn record_success(&self, policy: &HealthPolicy) -> Option<Transition> {
        let mut s = self.state.lock().unwrap();
        s.streak_failures = 0;
        if s.up {
            return None;
        }
        s.streak_successes += 1;
        if s.streak_successes >= policy.up_threshold.max(1) {
            s.up = true;
            s.streak_successes = 0;
            return Some(Transition::MarkedUp);
        }
        None
    }

    /// Records a failed probe or forward.
    pub fn record_failure(&self, policy: &HealthPolicy) -> Option<Transition> {
        let mut s = self.state.lock().unwrap();
        s.streak_successes = 0;
        if !s.up {
            return None;
        }
        s.streak_failures += 1;
        if s.streak_failures >= policy.fail_threshold.max(1) {
            s.up = false;
            s.streak_failures = 0;
            return Some(Transition::MarkedDown);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn down_after_threshold_consecutive_failures() {
        let p = HealthPolicy {
            fail_threshold: 3,
            up_threshold: 2,
        };
        let c = HealthCell::default();
        assert!(c.is_up());
        assert_eq!(c.record_failure(&p), None);
        assert_eq!(c.record_failure(&p), None);
        assert!(c.is_up(), "below threshold stays up");
        assert_eq!(c.record_failure(&p), Some(Transition::MarkedDown));
        assert!(!c.is_up());
        // Further failures report nothing new.
        assert_eq!(c.record_failure(&p), None);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let p = HealthPolicy {
            fail_threshold: 2,
            up_threshold: 1,
        };
        let c = HealthCell::default();
        assert_eq!(c.record_failure(&p), None);
        assert_eq!(c.record_success(&p), None, "already up: no transition");
        // The streak restarted: one more failure is again below threshold.
        assert_eq!(c.record_failure(&p), None);
        assert!(c.is_up());
        assert_eq!(c.record_failure(&p), Some(Transition::MarkedDown));
    }

    #[test]
    fn recovery_needs_a_clean_success_streak() {
        let p = HealthPolicy {
            fail_threshold: 1,
            up_threshold: 2,
        };
        let c = HealthCell::default();
        assert_eq!(c.record_failure(&p), Some(Transition::MarkedDown));
        assert_eq!(c.record_success(&p), None);
        // A failure inside the recovery streak restarts it.
        assert_eq!(c.record_failure(&p), None);
        assert_eq!(c.record_success(&p), None);
        assert!(!c.is_up());
        assert_eq!(c.record_success(&p), Some(Transition::MarkedUp));
        assert!(c.is_up());
    }
}
