//! # gcomm-cluster — sharded compile service with failover (DESIGN.md §13)
//!
//! One cache per `gcomm-serve` process stops paying off when the working
//! set outgrows a single LRU or a single process pins its cores. This
//! module shards the service: a **router** accepts the unchanged
//! `gcomm-serve/v1` protocol and consistent-hashes each request's
//! content-addressed cache key ([`crate::protocol::cache_key_material`],
//! the same FNV-1a material the shard cache uses) onto N independent
//! shard processes, so every repeat of a source lands on the shard whose
//! cache is warm for it.
//!
//! The robustness machinery around that one idea:
//!
//! * [`ring`] — the consistent-hash ring (virtual nodes; removal moves
//!   only the dead shard's keys) and the replica order (next distinct
//!   shard on the ring).
//! * [`health`] — a failure-threshold state machine per shard, fed by a
//!   background `ping` prober and by forwarding outcomes.
//! * [`hotkey`] — sliding-window hot-key detection; keys above the
//!   threshold replicate to the next ring shard so a primary's death does
//!   not cold-start the popular programs.
//! * [`shard`] — deadline-armed pooled connections and verbatim
//!   request/response relay (the bit-identity guarantee: the router never
//!   re-renders a payload, and payloads are pure functions of the key).
//! * [`router`] — the accept loop, retry with wall-clock exponential
//!   backoff ([`gcomm_machine::fault::RetryPolicy`] pointed at real
//!   sockets), failover to replicas, and a structured `unavailable`
//!   error when everything failed — never a hang, never a partial frame.
//! * [`proc`] — shard child-process management for `gcommc cluster`
//!   (spawn, address handshake, graceful shutdown, kill, respawn).
//! * [`supervise`] — the respawn loop (DESIGN.md §15): a dead child is
//!   relaunched with backoff on its original command line (same
//!   `--persist` directory, so it warms from its own log), probed, and
//!   readmitted to its ring slot via [`router::Admission`].

use std::time::Duration;

use gcomm_guard::BudgetSpec;
use gcomm_machine::fault::RetryPolicy;

use crate::frame::DEFAULT_MAX_FRAME;

pub mod health;
pub mod hotkey;
pub mod proc;
pub mod ring;
pub mod router;
pub mod shard;
pub mod supervise;

pub use health::{HealthCell, HealthPolicy, Transition};
pub use hotkey::HotKeys;
pub use proc::ShardProc;
pub use ring::Ring;
pub use router::{spawn_router, Admission, Router, RouterHandle};
pub use shard::{ForwardError, Shard};
pub use supervise::{supervise, SupervisePolicy, SupervisorHandle};

/// Tuning knobs of a cluster router.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Extra ring successors a request may fail over to (and hot keys
    /// replicate to). `1` means primary + one replica.
    pub replicas: usize,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Router worker threads forwarding requests.
    pub jobs: usize,
    /// Bounded router queue; submissions beyond it get `overloaded`.
    pub queue_cap: usize,
    /// Maximum accepted frame payload in bytes.
    pub max_frame: usize,
    /// Budget assumed for compile requests without one — **must match the
    /// shards' default budget** so the router hashes the same key material
    /// the shard caches under.
    pub default_budget: BudgetSpec,
    /// Read/write deadline on router→shard sockets.
    pub io_timeout: Duration,
    /// Connect deadline on router→shard sockets.
    pub connect_timeout: Duration,
    /// Retry curve (attempt count, exponential backoff shape).
    pub retry: RetryPolicy,
    /// Base of the wall-clock backoff between attempts.
    pub retry_base: Duration,
    /// Hard cap on a single backoff sleep.
    pub retry_cap: Duration,
    /// Seed for the per-request jitter stream (deterministic per key).
    pub seed: u64,
    /// Interval between background health probes.
    pub check_interval: Duration,
    /// Deadline on one health probe round-trip.
    pub check_timeout: Duration,
    /// Up/down thresholds of the health state machine.
    pub health: HealthPolicy,
    /// Hits within [`ClusterConfig::hot_window`] that make a key hot.
    pub hot_threshold: u32,
    /// Sliding window for hot-key detection.
    pub hot_window: Duration,
    /// Maximum tracked keys in the hot-key table.
    pub hot_capacity: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            replicas: 1,
            vnodes: 64,
            jobs: gcomm_par::default_jobs(),
            queue_cap: 64,
            max_frame: DEFAULT_MAX_FRAME,
            default_budget: BudgetSpec::default(),
            // Above the 10s sleep-op cap, so a worst-case parked worker
            // still answers within the deadline instead of tripping it.
            io_timeout: Duration::from_secs(15),
            connect_timeout: Duration::from_secs(1),
            retry: RetryPolicy::default(),
            retry_base: Duration::from_millis(25),
            retry_cap: Duration::from_secs(1),
            seed: 0x9e37_79b9_7f4a_7c15,
            check_interval: Duration::from_millis(150),
            check_timeout: Duration::from_secs(1),
            health: HealthPolicy::default(),
            hot_threshold: 3,
            hot_window: Duration::from_secs(2),
            hot_capacity: 65_536,
        }
    }
}
