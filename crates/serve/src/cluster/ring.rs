//! The consistent-hash ring mapping content-addressed cache keys to
//! shards.
//!
//! Each shard owns `vnodes` points on a 64-bit ring (FNV-1a of
//! `"shard<i>#<v>"`); a key routes to the shard owning the first point at
//! or after the key's own hash, wrapping at the top. Virtual nodes keep
//! the keyspace split roughly even for small shard counts, and the
//! *successor* walk — the next **distinct** shards around the ring —
//! defines the replica set: the replication rule is "replicate a hot key
//! to the next shard on the ring", so a shard's death hands its keyspace
//! (and its hot keys' warm cache) to exactly the shard that inherits it.

use crate::cache::fnv1a;

/// SplitMix64 finalizer: FNV-1a of short, similar strings (and of short
/// sources) clusters in the upper bits, which would let one shard own far
/// more than its share of the ring. Mixing every hash through a full
/// avalanche before it touches the ring restores balance without changing
/// the cache-key material itself.
fn spread(h: u64) -> u64 {
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An immutable consistent-hash ring over `shards` shard indices.
#[derive(Debug, Clone)]
pub struct Ring {
    /// Sorted `(point, shard)` pairs.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl Ring {
    /// Builds the ring for `shards` shards with `vnodes` points each
    /// (both clamped to at least 1).
    pub fn new(shards: usize, vnodes: usize) -> Ring {
        let shards = shards.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(shards * vnodes);
        for s in 0..shards {
            for v in 0..vnodes {
                points.push((spread(fnv1a(format!("shard{s}#{v}").as_bytes())), s));
            }
        }
        // Ties (two points hashing identically) resolve to the lower
        // shard index, deterministically.
        points.sort_unstable();
        Ring { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key_hash`: the first ring point at or after it,
    /// wrapping around the top of the ring.
    pub fn primary(&self, key_hash: u64) -> usize {
        let key = spread(key_hash);
        let idx = self.points.partition_point(|&(p, _)| p < key);
        self.points[idx % self.points.len()].1
    }

    /// The first `count` **distinct** shards in ring order starting at
    /// the key's primary — `[primary, first replica, ...]`. Never longer
    /// than the shard count.
    pub fn successors(&self, key_hash: u64, count: usize) -> Vec<usize> {
        let count = count.clamp(1, self.shards);
        let key = spread(key_hash);
        let start = self.points.partition_point(|&(p, _)| p < key);
        let mut order = Vec::with_capacity(count);
        for i in 0..self.points.len() {
            let shard = self.points[(start + i) % self.points.len()].1;
            if !order.contains(&shard) {
                order.push(shard);
                if order.len() == count {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = Ring::new(4, 64);
        for i in 0..1000u64 {
            let h = fnv1a(format!("key{i}").as_bytes());
            let p = ring.primary(h);
            assert!(p < 4);
            assert_eq!(p, ring.primary(h), "primary must be stable");
            assert_eq!(p, Ring::new(4, 64).primary(h), "and rebuild-stable");
        }
    }

    #[test]
    fn keyspace_is_roughly_balanced() {
        let ring = Ring::new(4, 64);
        let mut counts = [0usize; 4];
        for i in 0..4000u64 {
            counts[ring.primary(fnv1a(format!("key{i}").as_bytes()))] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            // 4000 keys over 4 shards: each should land near 1000. A wide
            // tolerance still catches a broken ring (all keys on one shard).
            assert!((400..=1800).contains(&c), "shard {s} owns {c} of 4000");
        }
    }

    #[test]
    fn successors_are_distinct_and_start_at_primary() {
        let ring = Ring::new(3, 16);
        for i in 0..200u64 {
            let h = fnv1a(format!("k{i}").as_bytes());
            let succ = ring.successors(h, 2);
            assert_eq!(succ.len(), 2);
            assert_eq!(succ[0], ring.primary(h));
            assert_ne!(succ[0], succ[1], "replica must be a distinct shard");
        }
        // Requesting more replicas than shards caps at the shard count.
        let all = ring.successors(7, 99);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn single_shard_ring_routes_everything_to_it() {
        let ring = Ring::new(1, 8);
        assert_eq!(ring.primary(0), 0);
        assert_eq!(ring.primary(u64::MAX), 0);
        assert_eq!(ring.successors(42, 3), vec![0]);
    }

    #[test]
    fn removal_only_moves_the_dead_shards_keys() {
        // Consistency property: shrinking 4 → 3 shards must not reshuffle
        // keys between surviving shards (only shard 3's keys move).
        let four = Ring::new(4, 64);
        let three = Ring::new(3, 64);
        let mut moved_from_survivor = 0;
        for i in 0..2000u64 {
            let h = fnv1a(format!("key{i}").as_bytes());
            let (a, b) = (four.primary(h), three.primary(h));
            if a < 3 && a != b {
                moved_from_survivor += 1;
            }
        }
        assert_eq!(moved_from_survivor, 0, "survivor keyspaces must be stable");
    }
}
