//! Shard supervision: respawn dead shard children and readmit them.
//!
//! Before this module the router's failure story ended at failover — a
//! dead shard was marked down and its keyspace served by ring replicas
//! forever, so every crash permanently shrank the cluster. The
//! supervisor closes the loop:
//!
//! 1. **Detect** — poll each owned [`ShardProc`] with a non-blocking
//!    `try_wait`; an exited child (crash, OOM-kill, SIGKILL chaos) is a
//!    respawn candidate.
//! 2. **Respawn** — re-run the exact original command line (same flags,
//!    same `--persist` directory) with wall-clock exponential backoff
//!    between failed attempts ([`RetryPolicy::backoff_wall`], the PR 1
//!    fault machinery pointed at `fork`/`exec`). The spawn handshake
//!    waits for the `serving on <addr>` banner, which a `--persist`
//!    shard prints only **after** its recovery scan completed — so a
//!    successfully respawned shard has already truncated torn records,
//!    quarantined corrupt ones, and warmed its cache from disk.
//! 3. **Probe** — one direct `ping` round-trip against the new address
//!    must answer `pong` before the shard is readmitted; a respawn that
//!    wedges after the banner never reaches the ring.
//! 4. **Readmit** — [`Admission::readmit`] re-points the shard's ring
//!    slot at the new ephemeral address, drops the stale connection
//!    pool, counts `cluster.respawn`, and records a structured event.
//!    The health machine still holds the last word: the slot stays
//!    down until the router's prober sees `up_threshold` consecutive
//!    successes against the *new* address.
//!
//! A respawn that fails all its attempts is retried on the next poll
//! cycle (the child is still observably dead), so a transient spawn
//! failure — fd exhaustion, a briefly missing binary — degrades to
//! failover, never to a supervisor exit.

use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gcomm_machine::fault::{RetryPolicy, Rng64};

use crate::client::Client;
use crate::server::ShutdownFlag;

use super::proc::ShardProc;
use super::router::Admission;

/// Tuning knobs of a shard supervisor.
#[derive(Debug, Clone)]
pub struct SupervisePolicy {
    /// Interval between child liveness polls.
    pub poll_interval: Duration,
    /// Respawn attempt budget and backoff shape per detected death.
    pub retry: RetryPolicy,
    /// Base of the wall-clock backoff between failed respawn attempts.
    pub backoff_base: Duration,
    /// Hard cap on a single backoff sleep.
    pub backoff_cap: Duration,
    /// Connect/IO deadline on one readmission probe round-trip.
    pub probe_timeout: Duration,
    /// Total time to keep probing a respawned shard before giving up on
    /// this respawn (the next poll cycle starts over).
    pub probe_deadline: Duration,
    /// Seed of the backoff jitter stream.
    pub seed: u64,
}

impl Default for SupervisePolicy {
    fn default() -> Self {
        SupervisePolicy {
            poll_interval: Duration::from_millis(100),
            retry: RetryPolicy::default(),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            probe_timeout: Duration::from_secs(1),
            probe_deadline: Duration::from_secs(10),
            seed: 0x5851_f42d_4c95_7f2d,
        }
    }
}

/// A running supervisor thread owning the shard children.
pub struct SupervisorHandle {
    thread: JoinHandle<Vec<ShardProc>>,
}

impl SupervisorHandle {
    /// Waits for the supervisor to observe the shutdown flag and returns
    /// the shard children (alive ones included) so the caller can drain
    /// and stop them. Does **not** set the flag itself — in `gcommc
    /// cluster` the flag is the router's, and the router's own exit
    /// winds the supervisor down.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the supervisor thread.
    pub fn join(self) -> Vec<ShardProc> {
        self.thread.join().expect("supervisor thread panicked")
    }
}

/// Spawns the supervision thread over `children`. Shard slot `i` of the
/// admission handle must correspond to `children[i]` (the order they
/// were passed to the router bind).
pub fn supervise(
    children: Vec<ShardProc>,
    admission: Admission,
    policy: SupervisePolicy,
    shutdown: ShutdownFlag,
) -> SupervisorHandle {
    let thread =
        std::thread::spawn(move || supervise_loop(children, &admission, &policy, &shutdown));
    SupervisorHandle { thread }
}

fn supervise_loop(
    mut children: Vec<ShardProc>,
    admission: &Admission,
    policy: &SupervisePolicy,
    shutdown: &ShutdownFlag,
) -> Vec<ShardProc> {
    let mut rng = Rng64::new(policy.seed);
    while !shutdown.is_set() {
        for (i, child) in children.iter_mut().enumerate() {
            if !child.has_exited() || shutdown.is_set() {
                continue;
            }
            if let Some(addr) = respawn_with_backoff(i, child, policy, &mut rng, shutdown) {
                // Banner implies the recovery scan completed; the probe
                // confirms the serve loop answers before readmission.
                if probe_until_pong(&addr, policy, shutdown) {
                    admission.readmit(i, addr);
                } else {
                    eprintln!(
                        "gcomm-serve: supervisor: shard {i} respawned at {addr} \
                         but never answered a probe; will retry"
                    );
                }
            }
        }
        sleep_in_slices(policy.poll_interval, shutdown);
    }
    children
}

/// One respawn episode: up to the policy's attempt budget, exponential
/// wall-clock backoff between failures. `None` leaves the child dead for
/// the next poll cycle.
fn respawn_with_backoff(
    index: usize,
    child: &mut ShardProc,
    policy: &SupervisePolicy,
    rng: &mut Rng64,
    shutdown: &ShutdownFlag,
) -> Option<SocketAddr> {
    let attempts = policy.retry.attempts();
    for attempt in 1..=attempts {
        if shutdown.is_set() {
            return None;
        }
        match child.respawn() {
            Ok(addr) => return Some(addr),
            Err(e) => {
                eprintln!(
                    "gcomm-serve: supervisor: respawning shard {index} \
                     (attempt {attempt}/{attempts}): {e}"
                );
                if attempt < attempts {
                    std::thread::sleep(policy.retry.backoff_wall(
                        policy.backoff_base,
                        policy.backoff_cap,
                        attempt,
                        rng,
                    ));
                }
            }
        }
    }
    None
}

/// Probes `addr` with the protocol's `ping` op until it answers `pong`
/// or the probe deadline expires.
fn probe_until_pong(addr: &SocketAddr, policy: &SupervisePolicy, shutdown: &ShutdownFlag) -> bool {
    let deadline = Instant::now() + policy.probe_deadline;
    loop {
        if shutdown.is_set() {
            return false;
        }
        let pong = Client::connect_timeout(addr, policy.probe_timeout)
            .and_then(|mut c| {
                c.set_io_timeout(Some(policy.probe_timeout))?;
                c.request(r#"{"op":"ping","id":0}"#)
            })
            .map(|resp| resp.contains("\"pong\":true"))
            .unwrap_or(false);
        if pong {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Sleeps `total` in 20 ms slices so shutdown never waits a full poll
/// interval on the supervisor.
fn sleep_in_slices(total: Duration, shutdown: &ShutdownFlag) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !shutdown.is_set() {
        std::thread::sleep(Duration::from_millis(20));
    }
}
