//! # gcomm-serve — the persistent compile service
//!
//! Compiling one mini-HPF kernel is fast, but editor integrations, CI
//! loops, and parameter sweeps issue the *same* compiles over and over
//! with millisecond-scale process startup dwarfing the work. This crate
//! turns the gcomm pipeline into a long-lived service (DESIGN.md §12):
//!
//! * **Protocol** ([`protocol`]): one JSON object per request/response
//!   (`compile`, `stats`, `version`, `ping`, `sleep`, `shutdown`) over
//!   two transports — NDJSON lines on stdio, 4-byte length-delimited
//!   frames on TCP ([`frame`]). The parser ([`json`]) is hand-rolled on
//!   `std` only, depth- and size-limited, and never panics on garbage.
//! * **Content-addressed caching** ([`cache`]): compile responses are
//!   keyed by the FNV-1a hash of (source, strategy, budget, sim profile)
//!   with the full key stored against collisions, bounded by bytes with
//!   LRU eviction. A cache hit is **bit-identical** to a cold compile —
//!   the cache stores the rendered response payload itself.
//! * **Batching & backpressure** ([`service`], [`server`]): requests feed
//!   a bounded queue in front of a `gcomm-par` worker pool
//!   (`--jobs`/`GCOMM_JOBS`); a full queue rejects with `overloaded`
//!   instead of buffering. Per-request budgets ride on `gcomm-guard`.
//! * **Observability**: every request records into its own `gcomm-obs`
//!   registry, merged into the server-lifetime registry in request order,
//!   so `stats` output is invariant under the worker count.
//! * **Graceful drain** ([`server::ShutdownFlag`]): a `shutdown` request
//!   or SIGTERM/SIGINT stops accepting, finishes every accepted job,
//!   flushes its response, and exits cleanly.
//! * **Cluster mode** ([`cluster`]): a router consistent-hashes cache
//!   keys over N shard processes, health-checks them, retries with real
//!   wall-clock backoff, fails over to ring replicas, and replicates hot
//!   keys — while responses stay bit-identical to a single-node server.
//! * **Crash-safe persistence** (`--persist`, DESIGN.md §15): cache
//!   inserts write through to a `gcomm-store` segmented log; a restarted
//!   service (or a supervisor-respawned shard) recovers it — truncating
//!   torn records, quarantining anything failing its checksum — and
//!   warms the in-memory cache before accepting its first request.
//!
//! Everything here is `std`-only, like the rest of the workspace.

pub mod cache;
pub mod cli;
pub mod client;
pub mod cluster;
pub mod frame;
pub mod json;
pub mod protocol;
pub mod server;
pub mod service;

pub use cache::{fnv1a, LruCache};
pub use client::{compile_request, Client};
pub use cluster::{spawn_router, ClusterConfig, Router, RouterHandle};
pub use frame::DEFAULT_MAX_FRAME;
pub use protocol::{CompileReq, Request, SimSpec, PROTOCOL};
pub use server::{serve_lines, spawn, Server, ServerHandle, ShutdownFlag};
pub use service::{Service, ServiceConfig};

/// The single workspace-level version: every crate inherits
/// `workspace.package.version`, so this constant is the version of the
/// whole toolchain, not just this crate.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
