//! The persistence contract end-to-end through the service (DESIGN.md
//! §15), held against fuzzed inputs: a service reopened on its `--persist`
//! directory serves **bit-identical** bytes to the cold compiles that
//! filled it — after a clean restart (every entry a warm hit, zero
//! recompiles) and after arbitrary injected disk corruption (damaged
//! records are truncated or quarantined, never served; surviving entries
//! still hit; lost entries recompile to the same bytes by purity).

use std::path::{Path, PathBuf};

use gcomm_core::Strategy;
use gcomm_serve::protocol::CompileReq;
use gcomm_serve::{Service, ServiceConfig};
use gcomm_store::fault::DiskFaultPlan;
use gcomm_store::FsyncPolicy;

const PROGRAMS: u64 = 200;

fn req(source: String, id: u64) -> CompileReq {
    CompileReq {
        id: Some(id),
        source,
        strategy: Strategy::Global,
        budget: None,
        sim: None,
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gcomm-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn persist_config(dir: &Path) -> ServiceConfig {
    ServiceConfig {
        persist: Some(dir.to_path_buf()),
        // Interval batching keeps the test fast while still exercising
        // the store.fsync path.
        persist_fsync: FsyncPolicy::Interval(8),
        ..ServiceConfig::default()
    }
}

/// Compiles `source` through `svc` and returns the response payload with
/// the id prefix stripped (ids are excluded from the cache key, so this
/// is the byte sequence the persistence layer must preserve).
fn payload(svc: &Service, source: &str, id: u64) -> String {
    let (resp, r) = svc.compile(&req(source.to_string(), id));
    svc.finish(svc.begin(), r);
    resp.strip_prefix(&format!("{{\"id\":{id},"))
        .unwrap_or_else(|| panic!("unexpected response shape: {resp}"))
        .to_string()
}

/// Fills a fresh persisting service with `PROGRAMS` fuzzed compiles and
/// returns (source, cold payload) pairs.
fn fill(dir: &Path) -> Vec<(String, String)> {
    let svc = Service::open(persist_config(dir)).unwrap();
    let cold: Vec<(String, String)> = (0..PROGRAMS)
        .map(|seed| {
            let source = proptest::hpf::generate(seed);
            let p = payload(&svc, &source, 1);
            (source, p)
        })
        .collect();
    let life = svc.lifetime_report();
    assert_eq!(life.counter("store.append"), PROGRAMS);
    assert!(life.counter("store.fsync") >= PROGRAMS / 8);
    cold
}

#[test]
fn clean_restart_warms_every_entry_bit_identically() {
    let dir = tmp_dir("clean");
    let cold = fill(&dir);

    // Reopen on the same directory: the recovery scan warms the cache
    // with every committed record, so the whole corpus hits without a
    // single recompile, bit-identical to the cold run.
    let svc = Service::open(persist_config(&dir)).unwrap();
    let life = svc.lifetime_report();
    assert_eq!(life.counter("store.recover_ok"), PROGRAMS);
    assert_eq!(life.counter("store.recover_torn"), 0);
    assert_eq!(life.counter("store.quarantined"), 0);
    for (i, (source, cold_payload)) in cold.iter().enumerate() {
        assert_eq!(
            &payload(&svc, source, 2),
            cold_payload,
            "program {i}: warm restart changed bytes"
        );
    }
    let life = svc.lifetime_report();
    assert_eq!(life.counter("cache.hit"), PROGRAMS);
    assert_eq!(life.counter("serve.compiles"), 0, "a warm entry recompiled");

    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_log_restart_never_serves_damaged_bytes() {
    let dir = tmp_dir("corrupt");
    let cold = fill(&dir);

    // Damage the log at arbitrary offsets: torn writes, short writes,
    // bit flips, zeroed fsync-sized ranges.
    let segs = gcomm_store::segment_files(&dir).unwrap();
    assert!(!segs.is_empty());
    let mut plan = DiskFaultPlan::new(0xC0FF_EE00_D15C_FA17);
    let mut changed = false;
    for _ in 0..3 {
        let seg = &segs[plan.next_pick(segs.len())];
        let before = std::fs::read(seg).unwrap();
        let fault = plan.inject(seg).unwrap();
        changed |= std::fs::read(seg).unwrap() != before;
        assert!(fault.len > 0 || before.is_empty());
    }
    assert!(changed, "no injection altered the log");

    // Reopen: recovery keeps a committed prefix (damage loses at least
    // one record), and *every* response — warm hit or recompile of a
    // lost entry — is bit-identical to the cold run. A quarantined
    // record leaking into the cache would diverge here.
    let svc = Service::open(persist_config(&dir)).unwrap();
    let life = svc.lifetime_report();
    let recovered = life.counter("store.recover_ok");
    assert!(recovered < PROGRAMS, "damage lost no records");
    assert!(life.counter("store.recover_torn") + life.counter("store.quarantined") >= 1);
    for (i, (source, cold_payload)) in cold.iter().enumerate() {
        assert_eq!(
            &payload(&svc, source, 2),
            cold_payload,
            "program {i}: post-corruption restart changed bytes"
        );
    }
    let life = svc.lifetime_report();
    assert_eq!(life.counter("cache.hit"), recovered);
    assert_eq!(life.counter("serve.compiles"), PROGRAMS - recovered);

    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
}
