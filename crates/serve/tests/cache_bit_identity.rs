//! The cache's core contract, held against fuzzed inputs: a cache hit is
//! **bit-identical** to the cold compile it replaced, for any well-formed
//! program the generator can produce (ISSUE: 200 seeds). Also pins the
//! LRU eviction order end-to-end through a byte-capped service.

use gcomm_core::Strategy;
use gcomm_guard::BudgetSpec;
use gcomm_serve::protocol::CompileReq;
use gcomm_serve::service::cold_compile_payload;
use gcomm_serve::{Service, ServiceConfig};

fn req(source: String, id: u64) -> CompileReq {
    CompileReq {
        id: Some(id),
        source,
        strategy: Strategy::Global,
        budget: None,
        sim: None,
    }
}

#[test]
fn cache_hits_are_bit_identical_across_fuzzed_programs() {
    let svc = Service::new(ServiceConfig::default());
    for seed in 0..200u64 {
        let source = proptest::hpf::generate(seed);
        // Cold through the service (fills the cache) …
        let (cold, r0) = svc.compile(&req(source.clone(), 1));
        svc.finish(svc.begin(), r0);
        // … warm through the service (must hit) …
        let (warm, r1) = svc.compile(&req(source.clone(), 2));
        svc.finish(svc.begin(), r1);
        // … and a cache-free reference compile.
        let reference = cold_compile_payload(&req(source, 0), &BudgetSpec::default());
        let cold_payload = cold.strip_prefix("{\"id\":1,").unwrap();
        let warm_payload = warm.strip_prefix("{\"id\":2,").unwrap();
        assert_eq!(
            cold_payload, warm_payload,
            "seed {seed}: hit differs from cold"
        );
        assert_eq!(
            cold_payload,
            format!("{reference}}}"),
            "seed {seed}: service payload differs from a cache-free compile"
        );
    }
    let life = svc.lifetime_report();
    assert_eq!(life.counter("cache.hit"), 200);
    assert_eq!(life.counter("cache.miss"), 200);
    assert_eq!(life.counter("serve.compiles"), 200);
}

#[test]
fn byte_capped_service_evicts_in_lru_order() {
    // A cache barely big enough for two responses: the third insert must
    // evict the least-recently-used entry, and touching an entry (a hit)
    // must protect it.
    let sources: Vec<String> = (0..3).map(proptest::hpf::generate).collect();
    // Measure what the first two entries actually occupy, then cap the
    // real service at exactly that.
    let probe = Service::new(ServiceConfig::default());
    for s in &sources[..2] {
        let (_, r) = probe.compile(&req(s.clone(), 1));
        probe.finish(probe.begin(), r);
    }
    let svc = Service::new(ServiceConfig {
        cache_bytes: probe.cache_usage().1,
        ..ServiceConfig::default()
    });
    for s in &sources[..2] {
        let (_, r) = svc.compile(&req(s.clone(), 1));
        svc.finish(svc.begin(), r);
    }
    assert_eq!(svc.cache_usage().0, 2);
    // Touch the older entry so the *newer* one becomes the LRU victim.
    let (_, r) = svc.compile(&req(sources[0].clone(), 1));
    svc.finish(svc.begin(), r);
    let (_, r) = svc.compile(&req(sources[2].clone(), 1));
    svc.finish(svc.begin(), r);
    let life = svc.lifetime_report();
    assert!(life.counter("cache.evict") >= 1, "third insert must evict");
    // The touched entry survived; the untouched one was evicted.
    let (_, r) = svc.compile(&req(sources[0].clone(), 1));
    svc.finish(svc.begin(), r);
    assert_eq!(svc.lifetime_report().counter("cache.hit"), 2);
    let (_, r) = svc.compile(&req(sources[1].clone(), 1));
    svc.finish(svc.begin(), r);
    assert_eq!(
        svc.lifetime_report().counter("cache.miss"),
        4,
        "the untouched entry must have been the eviction victim"
    );
}
