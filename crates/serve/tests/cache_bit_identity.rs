//! The cache's core contract, held against fuzzed inputs: a cache hit is
//! **bit-identical** to the cold compile it replaced, for any well-formed
//! program the generator can produce (ISSUE: 200 seeds). Also pins the
//! LRU eviction order end-to-end through a byte-capped service.

use gcomm_core::Strategy;
use gcomm_guard::BudgetSpec;
use gcomm_serve::protocol::CompileReq;
use gcomm_serve::service::cold_compile_payload;
use gcomm_serve::{Service, ServiceConfig};

fn req(source: String, id: u64) -> CompileReq {
    CompileReq {
        id: Some(id),
        source,
        strategy: Strategy::Global,
        budget: None,
        sim: None,
    }
}

#[test]
fn cache_hits_are_bit_identical_across_fuzzed_programs() {
    let svc = Service::new(ServiceConfig::default());
    for seed in 0..200u64 {
        let source = proptest::hpf::generate(seed);
        // Cold through the service (fills the cache) …
        let (cold, r0) = svc.compile(&req(source.clone(), 1));
        svc.finish(svc.begin(), r0);
        // … warm through the service (must hit) …
        let (warm, r1) = svc.compile(&req(source.clone(), 2));
        svc.finish(svc.begin(), r1);
        // … and a cache-free reference compile.
        let reference = cold_compile_payload(&req(source, 0), &BudgetSpec::default());
        let cold_payload = cold.strip_prefix("{\"id\":1,").unwrap();
        let warm_payload = warm.strip_prefix("{\"id\":2,").unwrap();
        assert_eq!(
            cold_payload, warm_payload,
            "seed {seed}: hit differs from cold"
        );
        assert_eq!(
            cold_payload,
            format!("{reference}}}"),
            "seed {seed}: service payload differs from a cache-free compile"
        );
    }
    let life = svc.lifetime_report();
    assert_eq!(life.counter("cache.hit"), 200);
    assert_eq!(life.counter("cache.miss"), 200);
    assert_eq!(life.counter("serve.compiles"), 200);
}

#[test]
fn byte_capped_service_evicts_in_lru_order() {
    // A cache barely big enough for two responses: the third insert must
    // evict the least-recently-used entry, and touching an entry (a hit)
    // must protect it.
    let sources: Vec<String> = (0..3).map(proptest::hpf::generate).collect();
    // Measure what the first two entries actually occupy, then cap the
    // real service at exactly that.
    let probe = Service::new(ServiceConfig::default());
    for s in &sources[..2] {
        let (_, r) = probe.compile(&req(s.clone(), 1));
        probe.finish(probe.begin(), r);
    }
    let svc = Service::new(ServiceConfig {
        cache_bytes: probe.cache_usage().1,
        ..ServiceConfig::default()
    });
    for s in &sources[..2] {
        let (_, r) = svc.compile(&req(s.clone(), 1));
        svc.finish(svc.begin(), r);
    }
    assert_eq!(svc.cache_usage().0, 2);
    // Touch the older entry so the *newer* one becomes the LRU victim.
    let (_, r) = svc.compile(&req(sources[0].clone(), 1));
    svc.finish(svc.begin(), r);
    let (_, r) = svc.compile(&req(sources[2].clone(), 1));
    svc.finish(svc.begin(), r);
    let life = svc.lifetime_report();
    assert!(life.counter("cache.evict") >= 1, "third insert must evict");
    // The touched entry survived; the untouched one was evicted.
    let (_, r) = svc.compile(&req(sources[0].clone(), 1));
    svc.finish(svc.begin(), r);
    assert_eq!(svc.lifetime_report().counter("cache.hit"), 2);
    let (_, r) = svc.compile(&req(sources[1].clone(), 1));
    svc.finish(svc.begin(), r);
    assert_eq!(
        svc.lifetime_report().counter("cache.miss"),
        4,
        "the untouched entry must have been the eviction victim"
    );
}

/// Requests differing **only** in the sim's `machine` or `coll` must
/// never share a cache entry: the topology and the collective algorithm
/// change the simulated numbers, so a collision would serve one
/// configuration's results under another's name. Each distinct pair is
/// a cold miss with its own entry, and replaying the same pair hits it
/// bit-identically.
#[test]
fn machine_and_coll_are_part_of_the_cache_identity() {
    let svc = Service::new(ServiceConfig::default());
    let source = proptest::hpf::generate(7);
    let run = |machine: &str, coll: &str, id: u64| -> String {
        let mut sim = gcomm_serve::protocol::SimSpec::flat("sp2", 32);
        sim.machine = machine.into();
        sim.coll = coll.into();
        let r = CompileReq {
            sim: Some(sim),
            ..req(source.clone(), id)
        };
        let (resp, work) = svc.compile(&r);
        svc.finish(svc.begin(), work);
        resp
    };
    let specs = [
        ("flat", "p2p"),
        ("flat", "ring"),
        ("fat-tree:4x4", "p2p"),
        ("fat-tree:4x4", "auto"),
        ("torus:5x5", "auto"),
    ];
    let cold: Vec<String> = specs.iter().map(|(m, c)| run(m, c, 1)).collect();
    assert_eq!(
        svc.cache_usage().0,
        specs.len(),
        "every (machine, coll) pair must get its own cache entry"
    );
    assert_eq!(
        svc.lifetime_report().counter("cache.miss"),
        specs.len() as u64
    );
    // Same pairs again: all hits, each bit-identical to its own cold run.
    let warm: Vec<String> = specs.iter().map(|(m, c)| run(m, c, 1)).collect();
    assert_eq!(
        svc.lifetime_report().counter("cache.hit"),
        specs.len() as u64
    );
    for (i, (m, c)) in specs.iter().enumerate() {
        assert_eq!(cold[i], warm[i], "{m}/{c}: hit differs from cold");
    }
    // And the configurations really produce different simulated numbers
    // (the reason a collision would be wrong): the flat/p2p payload
    // differs from the hierarchical ones.
    assert_ne!(cold[0], cold[2], "fat-tree priced like flat");
    assert_ne!(cold[2], cold[4], "torus priced like fat-tree");
}
