//! Cluster robustness tests against in-process shards: bit-identity with
//! a single-node server, failover with zero failed requests, partial-frame
//! classification, structured `unavailable`, hot-key replication, and the
//! drain guarantee.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

use gcomm_core::Strategy;
use gcomm_machine::fault::RetryPolicy;
use gcomm_serve::cluster::{spawn_router, ClusterConfig, HealthPolicy, Ring, RouterHandle};
use gcomm_serve::protocol::{cache_key_material, CompileReq};
use gcomm_serve::{compile_request, fnv1a, Client, ServerHandle, ServiceConfig};

fn shard_config() -> ServiceConfig {
    ServiceConfig {
        jobs: 2,
        ..ServiceConfig::default()
    }
}

/// Test-speed cluster config: fast retries, no surprises from the prober.
fn cluster_config() -> ClusterConfig {
    ClusterConfig {
        jobs: 4,
        retry_base: Duration::from_millis(5),
        retry_cap: Duration::from_millis(50),
        check_interval: Duration::from_millis(50),
        hot_threshold: 2,
        hot_window: Duration::from_secs(30),
        ..ClusterConfig::default()
    }
}

fn spawn_shards(n: usize) -> (Vec<ServerHandle>, Vec<SocketAddr>) {
    let shards: Vec<ServerHandle> = (0..n)
        .map(|_| gcomm_serve::spawn("127.0.0.1:0", shard_config()).unwrap())
        .collect();
    let addrs = shards.iter().map(ServerHandle::addr).collect();
    (shards, addrs)
}

fn sources(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            format!(
                "program p{i}\nparam n\nreal a(n,n), b(n,n) distribute (block, block)\n\
                 b(2:n, 1:n) = a(1:n-1, 1:n)\nend\n"
            )
        })
        .collect()
}

/// The ring primary for a plain compile of `src` (default strategy and
/// budget), mirroring exactly what the router hashes.
fn primary_shard(src: &str, shards: usize, cfg: &ClusterConfig) -> usize {
    let req = CompileReq {
        id: None,
        source: src.to_string(),
        strategy: Strategy::Global,
        budget: None,
        sim: None,
    };
    let hash = fnv1a(cache_key_material(&req, &cfg.default_budget).as_bytes());
    Ring::new(shards, cfg.vnodes).primary(hash)
}

fn counter(router: &RouterHandle, name: &str) -> u64 {
    router.registry().snapshot().counter(name)
}

#[test]
fn cluster_responses_are_bit_identical_to_single_node() {
    let single = gcomm_serve::spawn("127.0.0.1:0", shard_config()).unwrap();
    let (shards, addrs) = spawn_shards(3);
    let router = spawn_router("127.0.0.1:0", &addrs, cluster_config()).unwrap();

    let mut direct = Client::connect(single.addr()).unwrap();
    let mut clustered = Client::connect(router.addr()).unwrap();
    for round in 0..2 {
        // Round 0 compiles cold, round 1 serves from shard caches — the
        // bytes must match the single node either way.
        for (i, src) in sources(8).iter().enumerate() {
            let req = compile_request(i as u64, src, Strategy::Global, None, None);
            let a = direct.request(&req).unwrap();
            let b = clustered.request(&req).unwrap();
            assert_eq!(a, b, "round {round}, source {i}: cluster bytes differ");
        }
        // Error responses relay bit-identically too.
        let bad = compile_request(
            99,
            "program p\nnot hpf\nend\n",
            Strategy::Global,
            None,
            None,
        );
        assert_eq!(
            direct.request(&bad).unwrap(),
            clustered.request(&bad).unwrap()
        );
    }
    drop((direct, clustered));
    router.stop().unwrap();
    for s in shards {
        s.stop().unwrap();
    }
    single.stop().unwrap();
}

#[test]
fn shard_death_fails_over_with_zero_failed_requests() {
    let (mut shards, addrs) = spawn_shards(2);
    let router = spawn_router("127.0.0.1:0", &addrs, cluster_config()).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();

    let srcs = sources(8);
    let mut healthy: Vec<String> = Vec::new();
    for (i, src) in srcs.iter().enumerate() {
        let req = compile_request(i as u64, src, Strategy::Global, None, None);
        healthy.push(client.request(&req).unwrap());
    }

    // Kill shard 0. Its keyspace must fail over to shard 1 with every
    // request still answered, bit-identical to the healthy run.
    shards.remove(0).stop().unwrap();
    for (i, src) in srcs.iter().enumerate() {
        let req = compile_request(i as u64, src, Strategy::Global, None, None);
        let resp = client.request(&req).unwrap();
        assert!(resp.contains("\"ok\":true"), "request {i} failed: {resp}");
        assert_eq!(resp, healthy[i], "request {i}: failover changed bytes");
    }

    assert!(
        counter(&router, "cluster.failover") > 0,
        "no request used the failover path"
    );
    assert_eq!(
        counter(&router, "serve.unavailable"),
        0,
        "a request was dropped"
    );
    drop(client);
    router.stop().unwrap();
    shards.remove(0).stop().unwrap();
}

#[test]
fn all_shards_down_yields_structured_unavailable_not_a_hang() {
    let (shards, addrs) = spawn_shards(1);
    let cfg = ClusterConfig {
        retry: RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        },
        ..cluster_config()
    };
    let router = spawn_router("127.0.0.1:0", &addrs, cfg).unwrap();
    shards.into_iter().next().unwrap().stop().unwrap();

    let mut client = Client::connect(router.addr()).unwrap();
    let started = Instant::now();
    let req = compile_request(7, &sources(1)[0], Strategy::Global, None, None);
    let resp = client.request(&req).unwrap();
    assert!(
        resp.contains("\"error\":\"unavailable\""),
        "expected structured unavailable, got: {resp}"
    );
    assert!(resp.starts_with("{\"id\":7,"), "id must be echoed: {resp}");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "unavailable must come promptly, not from a hung socket"
    );
    assert!(counter(&router, "serve.unavailable") >= 1);
    assert!(counter(&router, "cluster.retry") >= 1);
    drop(client);
    router.stop().unwrap();
}

/// A fake shard that accepts connections, reads one frame, answers with a
/// deliberately truncated frame (header declares more bytes than sent),
/// and drops the connection — a process dying mid-write.
fn spawn_mid_write_killer() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut s) = stream else { break };
            let mut header = [0u8; 4];
            if s.read_exact(&mut header).is_err() {
                continue;
            }
            let len = u32::from_be_bytes(header) as usize;
            let mut payload = vec![0u8; len];
            if s.read_exact(&mut payload).is_err() {
                continue;
            }
            // Declare 100 payload bytes, deliver 10, die.
            let _ = s.write_all(&100u32.to_be_bytes());
            let _ = s.write_all(b"0123456789");
            let _ = s.flush();
            // Dropping the stream closes it mid-frame.
        }
    });
    addr
}

#[test]
fn mid_write_death_is_classified_conn_lost_and_failed_over() {
    let killer = spawn_mid_write_killer();
    let (shards, mut addrs) = spawn_shards(1);
    let real = addrs.remove(0);

    let cfg = ClusterConfig {
        // Keep the health machine from hiding the killer shard: the
        // request itself must hit it and classify the mid-frame death.
        health: HealthPolicy {
            fail_threshold: 10_000,
            up_threshold: 1,
        },
        ..cluster_config()
    };
    // Find a source whose primary is the killer (index 0 in the list).
    let src = sources(64)
        .into_iter()
        .find(|s| primary_shard(s, 2, &cfg) == 0)
        .expect("some source routes to shard 0");
    let router = spawn_router("127.0.0.1:0", &[killer, real], cfg).unwrap();

    let mut client = Client::connect(router.addr()).unwrap();
    let req = compile_request(3, &src, Strategy::Global, None, None);
    let resp = client.request(&req).unwrap();
    assert!(resp.contains("\"ok\":true"), "failover failed: {resp}");
    assert!(
        counter(&router, "cluster.conn_lost") >= 1,
        "mid-frame death was not classified as a lost connection"
    );
    assert!(counter(&router, "cluster.failover") >= 1);

    drop(client);
    router.stop().unwrap();
    shards.into_iter().next().unwrap().stop().unwrap();
}

/// Client-level regression for the same satellite: a peer dying mid-frame
/// surfaces as a clean `ConnectionAborted` error, never a partial payload.
#[test]
fn client_reports_connection_lost_on_mid_frame_death() {
    let killer = spawn_mid_write_killer();
    let mut client = Client::connect(killer).unwrap();
    client.send(r#"{"op":"ping","id":1}"#).unwrap();
    let err = client.recv().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionAborted);
    assert!(
        err.to_string().contains("connection lost"),
        "unexpected error text: {err}"
    );
}

#[test]
fn hot_keys_replicate_to_the_ring_successor() {
    let cfg = cluster_config();
    let (mut shards, addrs) = spawn_shards(2);
    // A source whose primary is shard 0 (so the successor is shard 1).
    let src = sources(64)
        .into_iter()
        .find(|s| primary_shard(s, 2, &cfg) == 0)
        .expect("some source routes to shard 0");
    let router = spawn_router("127.0.0.1:0", &addrs, cfg).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();

    // hot_threshold = 2: the second hit flags the key, replication warms
    // the successor in the background.
    let req = compile_request(1, &src, Strategy::Global, None, None);
    let baseline = client.request(&req).unwrap();
    for _ in 0..3 {
        assert_eq!(client.request(&req).unwrap(), baseline);
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while counter(&router, "cluster.replicated") == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        counter(&router, "cluster.replicated") >= 1,
        "hot key never replicated"
    );

    // The replica now serves the key from its warmed cache after the
    // primary dies — same bytes, and a cache hit rather than a compile.
    let replica = shards.pop().unwrap();
    let hits_before = replica.service().lifetime_report().counter("cache.hit");
    shards.pop().unwrap().stop().unwrap();
    assert_eq!(client.request(&req).unwrap(), baseline);
    assert!(counter(&router, "cluster.replica_hit") >= 1);
    let deadline = Instant::now() + Duration::from_secs(5);
    while replica.service().lifetime_report().counter("cache.hit") <= hits_before
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        replica.service().lifetime_report().counter("cache.hit") > hits_before,
        "failover request should hit the replica's warmed cache"
    );
    drop(client);
    router.stop().unwrap();
    replica.stop().unwrap();
}

/// Polls a router counter until it reaches `want` or the deadline hits.
fn wait_for_counter(router: &RouterHandle, name: &str, want: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let got = counter(router, name);
        if got >= want || Instant::now() >= deadline {
            return got;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The restart gap (DESIGN.md §15): before `Admission`, a dead shard was
/// marked down forever and its keyspace lived on replicas for the rest
/// of the router's life. This covers the full down → respawn → re-Up
/// transition: the replacement (on a *new* ephemeral port) is readmitted
/// to the dead shard's ring slot, the prober marks it up again, and the
/// primary path serves bit-identical bytes with no further failover.
#[test]
fn respawned_shard_rejoins_the_ring_and_serves_again() {
    let (mut shards, addrs) = spawn_shards(2);
    let router = spawn_router("127.0.0.1:0", &addrs, cluster_config()).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();

    let srcs = sources(8);
    let mut healthy: Vec<String> = Vec::new();
    for (i, src) in srcs.iter().enumerate() {
        let req = compile_request(i as u64, src, Strategy::Global, None, None);
        healthy.push(client.request(&req).unwrap());
    }

    // Shard 0 "crashes"; the prober marks it down and its keyspace fails
    // over to shard 1 (zero dropped requests, as ever).
    shards.remove(0).stop().unwrap();
    assert!(
        wait_for_counter(&router, "cluster.marked_down", 1) >= 1,
        "prober never marked the dead shard down"
    );
    for (i, src) in srcs.iter().enumerate() {
        let req = compile_request(i as u64, src, Strategy::Global, None, None);
        assert_eq!(client.request(&req).unwrap(), healthy[i]);
    }
    assert!(counter(&router, "cluster.failover") > 0);

    // "Respawn": a fresh shard on a fresh port takes over slot 0. The
    // readmission is counted and evented; the health machine keeps the
    // last word and re-ups the slot only after consecutive probe passes.
    let replacement = gcomm_serve::spawn("127.0.0.1:0", shard_config()).unwrap();
    router.admission().readmit(0, replacement.addr());
    assert_eq!(counter(&router, "cluster.respawn"), 1);
    assert!(
        wait_for_counter(&router, "cluster.marked_up", 1) >= 1,
        "respawned shard was never marked up again"
    );

    // With slot 0 up again, its keyspace is served on the primary path:
    // same bytes as the healthy run, no further failover.
    let failovers = counter(&router, "cluster.failover");
    for (i, src) in srcs.iter().enumerate() {
        let req = compile_request(i as u64, src, Strategy::Global, None, None);
        assert_eq!(
            client.request(&req).unwrap(),
            healthy[i],
            "request {i}: respawn changed bytes"
        );
    }
    assert_eq!(
        counter(&router, "cluster.failover"),
        failovers,
        "a readmitted shard should serve its keyspace without failover"
    );
    assert_eq!(counter(&router, "serve.unavailable"), 0);

    drop(client);
    router.stop().unwrap();
    replacement.stop().unwrap();
    shards.remove(0).stop().unwrap();
}

#[test]
fn router_stop_drains_in_flight_requests() {
    let (shards, addrs) = spawn_shards(2);
    let router = spawn_router("127.0.0.1:0", &addrs, cluster_config()).unwrap();
    let mut client = Client::connect(router.addr()).unwrap();

    // Pipeline slow requests, then stop the router while they are in
    // flight. Every accepted request must still produce its response.
    const N: u64 = 6;
    for id in 0..N {
        client
            .send(&format!("{{\"op\":\"sleep\",\"id\":{id},\"ms\":150}}"))
            .unwrap();
    }
    std::thread::sleep(Duration::from_millis(30));
    let stopper = std::thread::spawn(move || router.stop().unwrap());
    let mut got = 0;
    while let Ok(Some(resp)) = client.recv() {
        assert!(resp.contains("\"slept_ms\":150"), "{resp}");
        got += 1;
        if got == N {
            break;
        }
    }
    assert_eq!(got, N, "drain lost in-flight responses");
    stopper.join().unwrap();
    for s in shards {
        s.stop().unwrap();
    }
}
