//! Golden transcript of a scripted cluster session (the `cluster-smoke`
//! CI job mirrors this shape at the process level): a fixed request
//! sequence through a router over two shards, issued sequentially so
//! every response — including the stable stats counters — is
//! deterministic. Bless an intentional protocol change with:
//!
//! ```text
//! GCOMM_BLESS=1 cargo test -p gcomm-serve --test cluster_smoke_golden
//! ```

use std::path::PathBuf;

use gcomm_core::Strategy;
use gcomm_serve::cluster::{spawn_router, ClusterConfig};
use gcomm_serve::{compile_request, Client, ServiceConfig};

const OK_SRC: &str = "program p\nparam n\nreal a(n,n), b(n,n) distribute (block, block)\nb(2:n, 1:n) = a(1:n-1, 1:n)\nend\n";
const BAD_SRC: &str = "program p\nthis is not hpf\nend\n";

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/cluster_smoke.txt")
}

#[test]
fn scripted_cluster_session_matches_golden() {
    let shards: Vec<_> = (0..2)
        .map(|_| {
            gcomm_serve::spawn(
                "127.0.0.1:0",
                ServiceConfig {
                    jobs: 2,
                    ..ServiceConfig::default()
                },
            )
            .unwrap()
        })
        .collect();
    let addrs: Vec<_> = shards.iter().map(|s| s.addr()).collect();
    let router = spawn_router("127.0.0.1:0", &addrs, ClusterConfig::default()).unwrap();

    let mut client = Client::connect(router.addr()).unwrap();
    // Sequential request/response: each transcript line is fully
    // determined by the ones before it — routing is a pure function of
    // the key, and no health or replication event fires in a clean run.
    let script: Vec<String> = vec![
        r#"{"op":"ping","id":1}"#.into(),
        r#"{"op":"version","id":2}"#.into(),
        r#"{not json"#.into(),
        r#"{"op":"frobnicate","id":3}"#.into(),
        compile_request(10, OK_SRC, Strategy::Global, None, None),
        compile_request(11, OK_SRC, Strategy::Global, None, None), // shard cache hit
        compile_request(12, BAD_SRC, Strategy::Global, None, None),
        r#"{"op":"stats","id":20,"stable":true}"#.into(),
        r#"{"op":"shutdown","id":21}"#.into(),
    ];
    let mut transcript = String::new();
    for req in &script {
        transcript.push_str(&client.request(req).unwrap());
        transcript.push('\n');
    }
    drop(client);
    router.stop().unwrap();
    for s in shards {
        s.stop().unwrap();
    }

    let path = golden_path();
    if std::env::var_os("GCOMM_BLESS").is_some() {
        std::fs::write(&path, &transcript).expect("write blessed golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} (GCOMM_BLESS=1 to create)", path.display()));
    assert_eq!(
        golden, transcript,
        "results/cluster_smoke.txt drifted (GCOMM_BLESS=1 to accept)"
    );
}
