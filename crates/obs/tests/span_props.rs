//! Property tests for span nesting well-formedness: random open/close
//! trees, executed as real RAII guards, must snapshot to records where
//! every child's interval sits inside its parent's, depths step by one,
//! and ids are unique.

use proptest::prelude::*;

use gcomm_obs::{install, span, Registry, SpanRecord};

/// A random span tree: each node is a name index plus children.
#[derive(Debug, Clone)]
struct Tree {
    name: usize,
    children: Vec<Tree>,
}

fn tree() -> impl Strategy<Value = Tree> {
    let leaf = (0usize..6).prop_map(|name| Tree {
        name,
        children: Vec::new(),
    });
    leaf.prop_recursive(3, 24, 4, |inner| {
        ((0usize..6), prop::collection::vec(inner, 0..4))
            .prop_map(|(name, children)| Tree { name, children })
    })
}

fn execute(t: &Tree) {
    let _g = span(&format!("s{}", t.name));
    for c in &t.children {
        execute(c);
    }
}

fn count_nodes(t: &Tree) -> usize {
    1 + t.children.iter().map(count_nodes).sum::<usize>()
}

fn by_id(spans: &[SpanRecord], id: u64) -> &SpanRecord {
    spans.iter().find(|s| s.id == id).expect("parent id exists")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn nesting_is_well_formed(forest in prop::collection::vec(tree(), 1..4)) {
        let reg = Registry::new();
        {
            let _scope = install(reg.clone());
            for t in &forest {
                execute(t);
            }
        }
        let report = reg.snapshot();
        let spans = &report.spans;
        let expected: usize = forest.iter().map(count_nodes).sum();
        prop_assert_eq!(spans.len(), expected);
        prop_assert_eq!(report.dropped_spans, 0);

        // Ids unique.
        let mut ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), spans.len());

        for s in spans {
            match s.parent {
                None => prop_assert_eq!(s.depth, 0, "root {} has depth {}", s.name, s.depth),
                Some(pid) => {
                    let p = by_id(spans, pid);
                    prop_assert_eq!(
                        s.depth, p.depth + 1,
                        "{} depth {} under parent depth {}", s.name, s.depth, p.depth
                    );
                    // The child's interval nests inside the parent's: the
                    // parent opened first and closed last (monotonic clock).
                    prop_assert!(p.start_ns <= s.start_ns);
                    prop_assert!(
                        s.start_ns + s.dur_ns <= p.start_ns + p.dur_ns,
                        "child [{}, +{}] escapes parent [{}, +{}]",
                        s.start_ns, s.dur_ns, p.start_ns, p.dur_ns
                    );
                }
            }
        }
    }

    /// Span records never outlive the cap: overflowing trees aggregate
    /// into the pass table instead of growing the raw record list.
    #[test]
    fn span_cap_bounds_raw_records(extra in 0usize..64) {
        let reg = Registry::new();
        {
            let _scope = install(reg.clone());
            for _ in 0..(gcomm_obs::SPAN_CAP + extra) {
                let _g = span("hot");
            }
        }
        let report = reg.snapshot();
        prop_assert_eq!(report.spans.len(), gcomm_obs::SPAN_CAP);
        prop_assert_eq!(report.dropped_spans, extra as u64);
        // The aggregate still counts every call.
        let hot = report.passes().iter().find(|p| p.name == "hot").unwrap();
        prop_assert_eq!(hot.calls, (gcomm_obs::SPAN_CAP + extra) as u64);
    }
}
