//! # gcomm-obs — compiler-wide observability
//!
//! A zero-dependency span/counter/event subsystem for the gcomm pipeline.
//! The paper's entire evaluation (Tables 2–4, Figures 5/10) is driven by
//! counters — static/dynamic message counts, redundancy hits, combining
//! decisions — so every stage of the compiler threads its decisions
//! through this crate, and every binary can emit a structured report.
//!
//! Three primitives:
//!
//! * **Counters** — named, monotonically increasing [`AtomicU64`]s held in
//!   a thread-safe [`Registry`]. Bumping a counter never changes program
//!   behaviour; a run with stats enabled is bit-identical in its outputs
//!   to a run without (a property test in the workspace proves this for
//!   compiled schedules).
//! * **Spans** — RAII wall-time intervals on the monotonic clock
//!   ([`Instant`]), recorded with parent/depth links so nesting is
//!   reconstructible. Raw records are capped (see [`SPAN_CAP`]); an
//!   always-on aggregation (calls + total wall time per name) backs the
//!   per-pass timing table regardless of the cap.
//! * **Accumulating timers** — [`time`] guards for hot inner loops
//!   (dependence queries, section algebra) that feed only the per-name
//!   aggregation, never the raw span list.
//!
//! Collection is *opt-in per thread*: nothing is recorded unless a
//! registry is [`install`]ed on the current thread, so library users and
//! tests that never ask for stats pay one thread-local read per
//! instrumentation point. The installed registry itself is fully
//! thread-safe and may be shared across worker threads (each worker
//! installs a clone of the same registry).
//!
//! ```
//! let reg = gcomm_obs::Registry::new();
//! {
//!     let _scope = gcomm_obs::install(reg.clone());
//!     let _pass = gcomm_obs::span("demo.pass");
//!     gcomm_obs::count("demo.widgets", 3);
//! }
//! let report = reg.snapshot();
//! assert_eq!(report.counter("demo.widgets"), 3);
//! assert_eq!(report.passes()[0].name, "demo.pass");
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Maximum raw span records kept per registry; closes beyond the cap are
/// still aggregated into the per-pass table and counted under the
/// `obs.spans.dropped` counter.
pub const SPAN_CAP: usize = 4096;

/// Counter names every full-pipeline report is expected to carry, one
/// taxonomy entry per stage (DESIGN.md §9). Report emitters zero-fill
/// these so downstream consumers can rely on the keys existing.
pub const CANONICAL_COUNTERS: &[&str] = &[
    // lang: frontend volume.
    "lang.tokens",
    "lang.stmts",
    "lang.parse_errors",
    // ir: lowering and control-flow analyses.
    "ir.cfg.nodes",
    "ir.cfg.edges",
    "ir.dom.iterations",
    // dep: dependence queries issued by the placement passes.
    "dep.queries",
    "dep.query.calls",
    "dep.query.wall_ns",
    // sections: ASD construction and the section algebra.
    "sections.asd_built",
    "sections.subsume_checks",
    "sections.subsume_memo_hits",
    "sections.interned",
    "sections.degraded.subsume",
    // core: per-entry placement fates (the partition invariant
    // `candidates == placed + redundant + combined_away`) plus the
    // dataflow/iteration counts of the individual passes.
    "core.entries.candidates",
    "core.entries.placed",
    "core.entries.redundant",
    "core.entries.combined_away",
    "core.candidate_positions",
    "core.asd_cache_hits",
    "core.earliest.tests",
    "core.subset.eliminated",
    "core.redundancy.checks",
    "core.greedy.rounds",
    // core: graceful-degradation markers — nonzero when the resource
    // budget forced a pass to stop early (DESIGN.md §10).
    "core.degraded.candidates",
    "core.degraded.subset",
    "core.degraded.redundancy",
    "core.degraded.greedy",
    // search: the branch-and-bound optimal placement (DESIGN.md §16) —
    // nodes expanded (the budget unit), subtrees cut by each pruning
    // rule, and whether the space was fully certified.
    "search.nodes",
    "search.pruned_bound",
    "search.pruned_dominance",
    "search.complete",
    // machine: dynamic simulation volume and the fault/retry path.
    "machine.sim.runs",
    "machine.sim.messages",
    "machine.sim.comm_us",
    "machine.fault.retransmits",
    "machine.fault.timeouts",
    "machine.fault.fallbacks",
    "machine.fault.giveups",
    // serve: the persistent compile service (DESIGN.md §12) — request
    // volume, load shedding, and the content-addressed compile cache.
    "serve.requests",
    "serve.compiles",
    "serve.errors",
    "serve.overloaded",
    "serve.unavailable",
    "serve.degraded",
    "cache.hit",
    "cache.miss",
    "cache.evict",
    "cache.bypass",
    // cluster: the sharded router (DESIGN.md §13) — routing volume, the
    // failure/recovery path (retries with wall-clock backoff, failover to
    // the ring replica), hot-key replication, and shard health
    // transitions.
    "cluster.requests",
    "cluster.retry",
    "cluster.failover",
    "cluster.replica_hit",
    "cluster.replicated",
    "cluster.conn_lost",
    "cluster.marked_down",
    "cluster.marked_up",
    "cluster.respawn",
    // store: the crash-safe persistent cache (DESIGN.md §15) — appends
    // and fsyncs on the write path, recovery-scan outcomes on open
    // (clean records warmed, torn tails truncated, checksum failures
    // quarantined and never served), and segment compactions.
    "store.append",
    "store.fsync",
    "store.compact",
    "store.recover_ok",
    "store.recover_torn",
    "store.quarantined",
    // coll: the topology-aware collective backend (DESIGN.md §17) —
    // messages routed through the backend, the total point-to-point
    // steps they lowered to, which algorithm family the selector chose
    // per message, and forced algorithms that fell back to p2p because
    // they cannot lower the pattern.
    "coll.lowered",
    "coll.steps",
    "coll.selected_ring",
    "coll.selected_tree",
    "coll.selected_p2p",
    "coll.fallback",
    // query: the incremental query engine (DESIGN.md §14) — memo
    // hits/misses across all pass-level queries, early-cutoff events
    // (upstream recomputed, downstream still hit), and input-slot
    // invalidations (a routine chunk's fingerprint actually changed).
    "query.hit",
    "query.miss",
    "query.cutoff",
    "query.invalidate",
];

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct PassAgg {
    calls: u64,
    total_ns: u64,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    spans: Mutex<Vec<SpanRecord>>,
    passes: Mutex<BTreeMap<String, PassAgg>>,
    events: Mutex<Vec<Event>>,
    next_span_id: AtomicU64,
    dropped_spans: AtomicU64,
}

/// A thread-safe collection point for counters, spans, and events.
///
/// Cheaply clonable (clones share the same storage); safe to share across
/// threads.
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// Creates an empty registry; its epoch (span time zero) is now.
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                counters: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(Vec::new()),
                passes: Mutex::new(BTreeMap::new()),
                events: Mutex::new(Vec::new()),
                next_span_id: AtomicU64::new(0),
                dropped_spans: AtomicU64::new(0),
            }),
        }
    }

    /// The named counter's atomic cell, creating it at zero on first use.
    pub fn counter_cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.inner.counters.lock().unwrap();
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let cell = Arc::new(AtomicU64::new(0));
        map.insert(name.to_string(), Arc::clone(&cell));
        cell
    }

    /// Adds `delta` to the named counter.
    pub fn add(&self, name: &str, delta: u64) {
        self.counter_cell(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Appends an event.
    pub fn push_event(&self, name: &str, detail: &str) {
        let at_ns = self.inner.epoch.elapsed().as_nanos() as u64;
        self.inner.events.lock().unwrap().push(Event {
            name: name.to_string(),
            detail: detail.to_string(),
            at_ns,
        });
    }

    fn record_span(&self, rec: SpanRecord) {
        {
            let mut agg = self.inner.passes.lock().unwrap();
            let slot = agg.entry(rec.name.clone()).or_default();
            slot.calls += 1;
            slot.total_ns += rec.dur_ns;
        }
        let mut spans = self.inner.spans.lock().unwrap();
        if spans.len() < SPAN_CAP {
            spans.push(rec);
        } else {
            self.inner.dropped_spans.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn record_timing(&self, name: &str, dur_ns: u64) {
        let mut agg = self.inner.passes.lock().unwrap();
        let slot = agg.entry(name.to_string()).or_default();
        slot.calls += 1;
        slot.total_ns += dur_ns;
    }

    /// Clears all recorded data (counters, spans, pass table, events).
    pub fn reset(&self) {
        for c in self.inner.counters.lock().unwrap().values() {
            c.store(0, Ordering::Relaxed);
        }
        self.inner.spans.lock().unwrap().clear();
        self.inner.passes.lock().unwrap().clear();
        self.inner.events.lock().unwrap().clear();
        self.inner.dropped_spans.store(0, Ordering::Relaxed);
    }

    /// Merges a snapshot taken from another registry into this one:
    /// counters and the per-pass aggregation add, events append, and raw
    /// spans are re-numbered into this registry's id space (preserving
    /// their internal parent links) subject to the usual [`SPAN_CAP`].
    ///
    /// This is how the parallel drivers keep `--stats` output identical to
    /// a serial run: each work item records into a fresh registry, and the
    /// coordinating thread absorbs the snapshots **in item order**, so the
    /// merged report never depends on worker scheduling (span timestamps
    /// excepted — they are wall-clock by nature).
    pub fn absorb(&self, report: &StatsReport) {
        for (name, v) in &report.counters {
            if *v > 0 {
                self.add(name, *v);
            }
        }
        {
            let mut agg = self.inner.passes.lock().unwrap();
            for p in &report.pass_table {
                let slot = agg.entry(p.name.clone()).or_default();
                slot.calls += p.calls;
                slot.total_ns += p.total_ns;
            }
        }
        self.inner
            .events
            .lock()
            .unwrap()
            .extend(report.events.iter().cloned());
        if !report.spans.is_empty() {
            let base = self
                .inner
                .next_span_id
                .fetch_add(report.spans.len() as u64, Ordering::Relaxed);
            // Map the foreign ids (unique within their registry) onto a
            // freshly reserved block of this registry's id space.
            let remap: std::collections::BTreeMap<u64, u64> = report
                .spans
                .iter()
                .enumerate()
                .map(|(i, s)| (s.id, base + i as u64))
                .collect();
            let mut spans = self.inner.spans.lock().unwrap();
            for s in &report.spans {
                if spans.len() >= SPAN_CAP {
                    self.inner.dropped_spans.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let mut rec = s.clone();
                rec.id = remap[&s.id];
                rec.parent = s.parent.and_then(|p| remap.get(&p).copied());
                spans.push(rec);
            }
        }
        if report.dropped_spans > 0 {
            self.inner
                .dropped_spans
                .fetch_add(report.dropped_spans, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of everything recorded so far.
    pub fn snapshot(&self) -> StatsReport {
        let counters = self
            .inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let mut spans: Vec<SpanRecord> = self.inner.spans.lock().unwrap().clone();
        spans.sort_by_key(|s| (s.start_ns, s.id));
        let passes = self
            .inner
            .passes
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| PassStat {
                name: k.clone(),
                calls: v.calls,
                total_ns: v.total_ns,
            })
            .collect();
        StatsReport {
            counters,
            spans,
            pass_table: passes,
            events: self.inner.events.lock().unwrap().clone(),
            dropped_spans: self.inner.dropped_spans.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local installation
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: RefCell<Vec<Registry>> = const { RefCell::new(Vec::new()) };
    /// Open spans of this thread: `(span id, depth)`.
    static OPEN: RefCell<Vec<(u64, u32)>> = const { RefCell::new(Vec::new()) };
}

/// Installs `reg` as the current thread's collection target until the
/// returned guard drops (installations nest; the previous target is
/// restored).
#[must_use = "collection stops when the guard drops"]
pub fn install(reg: Registry) -> ScopeGuard {
    CURRENT.with(|c| c.borrow_mut().push(reg));
    ScopeGuard { _priv: () }
}

/// Restores the previously installed registry (if any) on drop.
#[derive(Debug)]
pub struct ScopeGuard {
    _priv: (),
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// The registry currently installed on this thread, if any.
pub fn current() -> Option<Registry> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// True when a registry is installed on this thread (collection is live).
pub fn enabled() -> bool {
    CURRENT.with(|c| !c.borrow().is_empty())
}

/// Adds `delta` to a counter on the current registry; no-op when none is
/// installed.
pub fn count(name: &str, delta: u64) {
    if let Some(reg) = current() {
        reg.add(name, delta);
    }
}

/// Records an event on the current registry; no-op when none is installed.
pub fn event(name: &str, detail: &str) {
    if let Some(reg) = current() {
        reg.push_event(name, detail);
    }
}

// ---------------------------------------------------------------------------
// Spans and timers
// ---------------------------------------------------------------------------

/// One closed span: a wall-time interval with its nesting links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the registry (allocation order).
    pub id: u64,
    /// Id of the enclosing span open on the same thread, if any.
    pub parent: Option<u64>,
    /// Nesting depth (0 = top level).
    pub depth: u32,
    /// Span name (dotted stage-qualified, e.g. `core.greedy`).
    pub name: String,
    /// Start, nanoseconds since the registry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// A named point event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Event name.
    pub name: String,
    /// Free-form detail.
    pub detail: String,
    /// Nanoseconds since the registry epoch.
    pub at_ns: u64,
}

/// Times a named span until dropped. No-op when no registry is installed.
#[must_use = "the span closes when the guard drops"]
pub fn span(name: &str) -> SpanGuard {
    let Some(reg) = current() else {
        return SpanGuard { open: None };
    };
    let id = reg.inner.next_span_id.fetch_add(1, Ordering::Relaxed);
    let (parent, depth) = OPEN.with(|o| {
        let mut o = o.borrow_mut();
        let parent = o.last().map(|&(pid, _)| pid);
        let depth = o.len() as u32;
        o.push((id, depth));
        (parent, depth)
    });
    SpanGuard {
        open: Some(OpenSpan {
            reg,
            id,
            parent,
            depth,
            name: name.to_string(),
            started: Instant::now(),
        }),
    }
}

#[derive(Debug)]
struct OpenSpan {
    reg: Registry,
    id: u64,
    parent: Option<u64>,
    depth: u32,
    name: String,
    started: Instant,
}

/// RAII guard returned by [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else { return };
        let dur_ns = open.started.elapsed().as_nanos() as u64;
        let start_ns = open.started.duration_since(open.reg.inner.epoch).as_nanos() as u64;
        OPEN.with(|o| {
            let mut o = o.borrow_mut();
            if let Some(pos) = o.iter().rposition(|&(id, _)| id == open.id) {
                o.truncate(pos);
            }
        });
        open.reg.record_span(SpanRecord {
            id: open.id,
            parent: open.parent,
            depth: open.depth,
            name: open.name,
            start_ns,
            dur_ns,
        });
    }
}

/// Starts an accumulating timer: on drop, adds one call and the elapsed
/// nanoseconds to the per-pass aggregation under `name`, and bumps the
/// `{name}.calls` / `{name}.wall_ns` counters. Never allocates a raw span
/// record — safe for hot inner loops. No-op when no registry is installed.
#[must_use = "the timer stops when the guard drops"]
pub fn time(name: &'static str) -> TimeGuard {
    let Some(reg) = current() else {
        return TimeGuard { open: None };
    };
    TimeGuard {
        open: Some((reg, name, Instant::now())),
    }
}

/// RAII guard returned by [`time`].
#[derive(Debug)]
pub struct TimeGuard {
    open: Option<(Registry, &'static str, Instant)>,
}

impl Drop for TimeGuard {
    fn drop(&mut self) {
        let Some((reg, name, started)) = self.open.take() else {
            return;
        };
        let dur_ns = started.elapsed().as_nanos() as u64;
        reg.record_timing(name, dur_ns);
        reg.add(&format!("{name}.calls"), 1);
        reg.add(&format!("{name}.wall_ns"), dur_ns);
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// Aggregated wall time of one named pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStat {
    /// Pass name.
    pub name: String,
    /// Number of completed spans/timers with this name.
    pub calls: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u64,
}

/// A point-in-time statistics snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsReport {
    /// Counter values, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Raw span records (bounded by [`SPAN_CAP`]), sorted by start time.
    pub spans: Vec<SpanRecord>,
    /// Aggregated per-pass wall times (spans + accumulating timers),
    /// sorted by name.
    pub pass_table: Vec<PassStat>,
    /// Point events in record order.
    pub events: Vec<Event>,
    /// Span closes that exceeded [`SPAN_CAP`] and kept no raw record.
    pub dropped_spans: u64,
}

impl StatsReport {
    /// The value of a counter (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The aggregated pass table.
    pub fn passes(&self) -> &[PassStat] {
        &self.pass_table
    }

    /// Stage prefixes present (the part of each name before the first
    /// `.`), across passes and counters.
    pub fn stages(&self) -> Vec<String> {
        let mut set: Vec<String> = Vec::new();
        let mut add = |name: &str| {
            let stage = name.split('.').next().unwrap_or(name).to_string();
            if !set.contains(&stage) {
                set.push(stage);
            }
        };
        for p in &self.pass_table {
            add(&p.name);
        }
        for k in self.counters.keys() {
            add(k);
        }
        set.sort();
        set
    }

    /// The report as a JSON object (hand-rolled; the build environment has
    /// no serialization crates). Canonical taxonomy counters
    /// ([`CANONICAL_COUNTERS`]) are zero-filled so every report carries
    /// the full key set.
    pub fn to_json(&self) -> String {
        let mut counters: BTreeMap<&str, u64> =
            CANONICAL_COUNTERS.iter().map(|&name| (name, 0)).collect();
        for (k, v) in &self.counters {
            counters.insert(k.as_str(), *v);
        }
        let mut out = String::from("{\"schema\":\"gcomm-obs/v1\",\"passes\":[");
        for (i, p) in self.pass_table.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"calls\":{},\"wall_ns\":{}}}",
                json_str(&p.name),
                p.calls,
                p.total_ns
            );
        }
        out.push_str("],\"counters\":{");
        for (i, (k, v)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_str(k), v);
        }
        out.push_str("},\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"parent\":{},\"depth\":{},\"name\":{},\"start_ns\":{},\"dur_ns\":{}}}",
                s.id,
                s.parent.map_or("null".to_string(), |p| p.to_string()),
                s.depth,
                json_str(&s.name),
                s.start_ns,
                s.dur_ns
            );
        }
        out.push_str("],\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"detail\":{},\"at_ns\":{}}}",
                json_str(&e.name),
                json_str(&e.detail),
                e.at_ns
            );
        }
        let _ = write!(out, "],\"dropped_spans\":{}}}", self.dropped_spans);
        out
    }

    /// A human-readable report: pass timing table, then counters.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<28} {:>8} {:>12}", "pass", "calls", "wall");
        for p in &self.pass_table {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>12}",
                p.name,
                p.calls,
                fmt_ns(p.total_ns)
            );
        }
        let _ = writeln!(out, "{:<42} {:>10}", "counter", "value");
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k:<42} {v:>10}");
        }
        if self.dropped_spans > 0 {
            let _ = writeln!(out, "({} span records dropped)", self.dropped_spans);
        }
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.1} us", ns as f64 / 1e3)
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_thread_records_nothing() {
        assert!(!enabled());
        count("x", 1);
        let _s = span("y");
        // Nothing to assert against — the calls must simply be no-ops.
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let reg = Registry::new();
        {
            let _g = install(reg.clone());
            count("a.one", 2);
            count("a.one", 3);
            count("b.two", 1);
        }
        let rep = reg.snapshot();
        assert_eq!(rep.counter("a.one"), 5);
        assert_eq!(rep.counter("b.two"), 1);
        assert_eq!(rep.counter("missing"), 0);
    }

    #[test]
    fn spans_nest_with_parent_links() {
        let reg = Registry::new();
        {
            let _g = install(reg.clone());
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
            {
                let _inner2 = span("inner2");
            }
        }
        let rep = reg.snapshot();
        assert_eq!(rep.spans.len(), 3);
        let outer = rep.spans.iter().find(|s| s.name == "outer").unwrap();
        for name in ["inner", "inner2"] {
            let s = rep.spans.iter().find(|s| s.name == name).unwrap();
            assert_eq!(s.parent, Some(outer.id));
            assert_eq!(s.depth, 1);
            assert!(s.start_ns >= outer.start_ns);
            assert!(s.start_ns + s.dur_ns <= outer.start_ns + outer.dur_ns);
        }
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.parent, None);
    }

    #[test]
    fn install_nests_and_restores() {
        let a = Registry::new();
        let b = Registry::new();
        {
            let _ga = install(a.clone());
            count("k", 1);
            {
                let _gb = install(b.clone());
                count("k", 10);
            }
            count("k", 1);
        }
        assert!(!enabled());
        assert_eq!(a.snapshot().counter("k"), 2);
        assert_eq!(b.snapshot().counter("k"), 10);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = Registry::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = reg.clone();
                std::thread::spawn(move || {
                    let _g = install(r);
                    for _ in 0..1000 {
                        count("t.n", 1);
                    }
                    let _s = span("t.work");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let rep = reg.snapshot();
        assert_eq!(rep.counter("t.n"), 4000);
        let pass = rep.passes().iter().find(|p| p.name == "t.work").unwrap();
        assert_eq!(pass.calls, 4);
    }

    #[test]
    fn timers_feed_the_pass_table_not_the_span_list() {
        let reg = Registry::new();
        {
            let _g = install(reg.clone());
            for _ in 0..10 {
                let _t = time("hot.loop");
            }
        }
        let rep = reg.snapshot();
        assert!(rep.spans.is_empty());
        let p = rep.passes().iter().find(|p| p.name == "hot.loop").unwrap();
        assert_eq!(p.calls, 10);
        assert_eq!(rep.counter("hot.loop.calls"), 10);
    }

    #[test]
    fn json_is_parseable_shape_and_zero_fills_taxonomy() {
        let reg = Registry::new();
        {
            let _g = install(reg.clone());
            count("lang.tokens", 7);
            let _s = span("lang.parse");
        }
        let rep = reg.snapshot();
        let json = reg.snapshot().to_json();
        assert!(json.starts_with("{\"schema\":\"gcomm-obs/v1\""));
        assert!(json.contains("\"lang.tokens\":7"));
        // Zero-filled canonical keys.
        assert!(json.contains("\"machine.fault.retransmits\":0"));
        assert!(json.contains("\"core.entries.candidates\":0"));
        assert!(rep.stages().contains(&"lang".to_string()));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn span_cap_drops_but_still_aggregates() {
        let reg = Registry::new();
        {
            let _g = install(reg.clone());
            for _ in 0..(SPAN_CAP + 5) {
                let _s = span("many");
            }
        }
        let rep = reg.snapshot();
        assert_eq!(rep.spans.len(), SPAN_CAP);
        assert_eq!(rep.dropped_spans, 5);
        let p = rep.passes().iter().find(|p| p.name == "many").unwrap();
        assert_eq!(p.calls, (SPAN_CAP + 5) as u64);
    }

    #[test]
    fn absorb_merges_counters_passes_and_spans() {
        let main = Registry::new();
        {
            let _g = install(main.clone());
            count("k.a", 2);
            let _s = span("main.work");
        }
        let worker = Registry::new();
        {
            let _g = install(worker.clone());
            count("k.a", 3);
            count("k.b", 7);
            let _outer = span("w.outer");
            let _inner = span("w.inner");
        }
        main.absorb(&worker.snapshot());
        let rep = main.snapshot();
        assert_eq!(rep.counter("k.a"), 5);
        assert_eq!(rep.counter("k.b"), 7);
        assert_eq!(rep.spans.len(), 3);
        // Re-numbered ids stay unique and parent links survive the remap.
        let mut ids: Vec<u64> = rep.spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
        let outer = rep.spans.iter().find(|s| s.name == "w.outer").unwrap();
        let inner = rep.spans.iter().find(|s| s.name == "w.inner").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        let p = rep.passes().iter().find(|p| p.name == "w.inner").unwrap();
        assert_eq!(p.calls, 1);
    }

    #[test]
    fn absorb_is_order_deterministic_for_counters() {
        let mk = |n: u64| {
            let r = Registry::new();
            let _g = install(r.clone());
            count("c.x", n);
            drop(_g);
            r.snapshot()
        };
        let (a, b) = (mk(1), mk(10));
        let fwd = Registry::new();
        fwd.absorb(&a);
        fwd.absorb(&b);
        let rev = Registry::new();
        rev.absorb(&b);
        rev.absorb(&a);
        assert_eq!(
            fwd.snapshot().counters.get("c.x"),
            rev.snapshot().counters.get("c.x")
        );
    }

    #[test]
    fn reset_clears_everything() {
        let reg = Registry::new();
        {
            let _g = install(reg.clone());
            count("x", 3);
            let _s = span("s");
        }
        reg.reset();
        let rep = reg.snapshot();
        assert_eq!(rep.counter("x"), 0);
        assert!(rep.spans.is_empty());
        assert!(rep.passes().is_empty());
    }
}
