//! Property tests for the query engine itself, on a synthetic
//! three-stage pipeline (so this crate's tests stay below `gcomm-core`
//! in the dependency graph):
//!
//! ```text
//!   source ──fnv──▶ canon (strip comments/space) ──▶ upper ──▶ summary
//! ```
//!
//! The stages mirror the real compiler's shape — each keyed by a
//! fingerprint of its input, each output fingerprinted for the next
//! stage's key — which is all the engine ever sees. Properties:
//!
//! * a **no-op edit** (comment/whitespace only) recomputes nothing past
//!   the first stage: the canonical text's fingerprint is unchanged, so
//!   downstream memos hit and the early cutoff is recorded;
//! * an edit to routine R **never recomputes** routine-local queries of
//!   any R' ≠ R;
//! * memo ≡ direct under a 4-worker pool: concurrent pipelines through
//!   one shared engine return exactly what the memo-free functions do.

use std::sync::Mutex;

use gcomm_query::{fingerprint, Computed, InputChange, QueryEngine};

// ---------------------------------------------------------------------------
// The synthetic pipeline
// ---------------------------------------------------------------------------

/// Stage 1: canonicalize — drop `#` comments, collapse whitespace.
/// Distinct sources can canonicalize identically (that is the point).
fn canon_of(src: &str) -> String {
    src.lines()
        .map(|l| l.split('#').next().unwrap_or(""))
        .flat_map(str::split_whitespace)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Stage 2: "lower" — uppercase the canonical text.
fn upper_of(canon: &str) -> String {
    canon.to_ascii_uppercase()
}

/// Stage 3: "place" — summarize.
fn summary_of(upper: &str) -> String {
    format!("{}:{}", upper.split(' ').count(), upper.len())
}

/// The memo-free reference.
fn direct(src: &str) -> String {
    summary_of(&upper_of(&canon_of(src)))
}

/// A pipeline instance: the engine plus a log of `(stage, routine)`
/// compute events, so tests can assert exactly what reran.
struct Pipe {
    eng: QueryEngine,
    computes: Mutex<Vec<(&'static str, String)>>,
}

impl Pipe {
    fn new() -> Self {
        Pipe {
            eng: QueryEngine::new(1 << 20),
            computes: Mutex::new(Vec::new()),
        }
    }

    fn log(&self, stage: &'static str, routine: &str) {
        self.computes
            .lock()
            .unwrap()
            .push((stage, routine.to_string()));
    }

    /// Computes logged for a routine since construction.
    fn computed_for(&self, routine: &str) -> Vec<&'static str> {
        self.computes
            .lock()
            .unwrap()
            .iter()
            .filter(|(_, r)| r == routine)
            .map(|(s, _)| *s)
            .collect()
    }

    /// Runs the pipeline for one named routine through the engine.
    fn run(&self, routine: &str, src: &str) -> (String, InputChange) {
        let src_fp = fingerprint(src.as_bytes());
        let change = self.eng.note_input(fingerprint(routine.as_bytes()), src_fp);

        let (canon, h1) = self.eng.memo("s.canon", src_fp, || {
            self.log("canon", routine);
            let v = canon_of(src);
            Computed {
                bytes: v.len() as u64,
                cacheable: true,
                value: v,
            }
        });
        let canon_fp = fingerprint(canon.as_bytes());
        let (upper, h2) = self.eng.memo("s.upper", canon_fp, || {
            self.log("upper", routine);
            let v = upper_of(&canon);
            Computed {
                bytes: v.len() as u64,
                cacheable: true,
                value: v,
            }
        });
        if !h1 && h2 {
            self.eng.count_cutoff(1);
        }
        let upper_fp = fingerprint(upper.as_bytes());
        let (sum, h3) = self.eng.memo("s.sum", upper_fp, || {
            self.log("sum", routine);
            let v = summary_of(&upper);
            Computed {
                bytes: v.len() as u64,
                cacheable: true,
                value: v,
            }
        });
        if !h2 && h3 {
            self.eng.count_cutoff(1);
        }
        ((*sum).clone(), change)
    }
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

/// A no-op edit (comments/whitespace) recomputes only the stage that
/// reads raw text; everything past the fingerprint check cuts off.
#[test]
fn noop_edit_cuts_off_after_the_first_stage() {
    let p = Pipe::new();
    let (a, ch) = p.run("r0", "alpha beta # note\n");
    assert_eq!(ch, InputChange::Fresh);
    assert_eq!(p.computed_for("r0"), ["canon", "upper", "sum"]);

    // Same canonical content, different bytes.
    let (b, ch) = p.run("r0", "alpha     beta   # a different note\n");
    assert_eq!(ch, InputChange::Changed, "the raw bytes did change");
    assert_eq!(a, b);
    // Only canon reran; upper and sum were cut off.
    assert_eq!(p.computed_for("r0"), ["canon", "upper", "sum", "canon"]);
    let stats = p.eng.stats();
    assert_eq!(stats.cutoffs, 1, "{stats:?}");
    assert_eq!(stats.invalidations, 1, "{stats:?}");

    // A byte-identical re-presentation recomputes nothing at all.
    let (c, ch) = p.run("r0", "alpha     beta   # a different note\n");
    assert_eq!(ch, InputChange::Unchanged);
    assert_eq!(a, c);
    assert_eq!(p.computed_for("r0").len(), 4, "zero new computes");
}

/// Editing routine R never recomputes the routine-local queries of any
/// other routine.
#[test]
fn edits_to_one_routine_never_recompute_others() {
    let p = Pipe::new();
    let sources: Vec<(String, String)> = (0..5)
        .map(|i| (format!("r{i}"), format!("word{i} tail{i}\n")))
        .collect();
    for (r, s) in &sources {
        p.run(r, s);
    }
    let before: Vec<Vec<&str>> = sources.iter().map(|(r, _)| p.computed_for(r)).collect();

    // A real (content-changing) edit to r2 only.
    p.run("r2", "word2 tail2 extra\n");

    for (i, (r, _)) in sources.iter().enumerate() {
        let after = p.computed_for(r);
        if r == "r2" {
            assert_eq!(after.len(), before[i].len() + 3, "r2 fully recomputes");
        } else {
            assert_eq!(after, before[i], "{r} must be untouched by r2's edit");
        }
    }
    assert_eq!(p.eng.stats().invalidations, 1);

    // Re-presenting the untouched routines is pure reuse.
    for (r, s) in &sources {
        if r != "r2" {
            p.run(r, s);
            assert_eq!(p.computed_for(r).len(), 3, "{r}: no new computes");
        }
    }
}

/// Memoized results equal the direct computation under a 4-worker pool
/// hammering one shared engine — including duplicate keys racing.
#[test]
fn memo_equals_direct_under_four_jobs() {
    let p = Pipe::new();
    // 48 inputs over 12 distinct contents: every content appears 4
    // times, so racing duplicate computes are guaranteed.
    let inputs: Vec<(String, String)> = (0..48)
        .map(|i| {
            let k = i % 12;
            (format!("r{k}"), format!("alpha{k} beta{} # c{i}\n", k % 3))
        })
        .collect();
    let expected: Vec<String> = inputs.iter().map(|(_, s)| direct(s)).collect();
    let got = gcomm_par::map(4, &inputs, |_, (r, s)| p.run(r, s).0);
    assert_eq!(got, expected);

    // And a serial rerun over the now-warm memo still agrees.
    for ((r, s), want) in inputs.iter().zip(&expected) {
        assert_eq!(p.run(r, s).0, *want);
    }
    let stats = p.eng.stats();
    assert!(stats.hits > 0, "{stats:?}");
}

/// Distinct-but-content-equal routines share memo entries (content
/// addressing), while `note_input` still tracks them separately.
#[test]
fn content_addressing_shares_across_routines() {
    let p = Pipe::new();
    p.run("left", "same text\n");
    let (_, ch) = p.run("right", "same text\n");
    assert_eq!(ch, InputChange::Fresh, "slots are per-routine");
    assert_eq!(p.computed_for("right"), Vec::<&str>::new(), "full reuse");
    assert_eq!(p.eng.stats().invalidations, 0);
}
