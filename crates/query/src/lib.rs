//! # gcomm-query — a hand-rolled incremental query engine
//!
//! Salsa-style incrementality without the framework: every pass of the
//! pipeline becomes a *query* — a pure function memoized under a
//! content-addressed key — and invalidation falls out of the keying
//! instead of a revision counter. If the fingerprint of a query's input
//! is unchanged, the key is unchanged, the memo hits, and nothing
//! downstream recomputes. If an upstream pass *does* recompute but
//! produces output with the same fingerprint as before, downstream keys
//! are again unchanged and the recomputation stops there — that is the
//! early-cutoff rule, and it is a property of the key derivation rather
//! than bookkeeping in the engine (DESIGN.md §14).
//!
//! The engine therefore only needs three things:
//!
//! * [`QueryEngine::memo`] — probe/compute/insert for a `(query, key)`
//!   pair, values stored as `Arc<dyn Any>` so one byte-capped LRU serves
//!   every query kind. The closure runs *outside* the engine lock:
//!   duplicate concurrent computes of the same key are benign (queries
//!   are pure), and the first inserted value wins so all callers share
//!   one `Arc`.
//! * [`QueryEngine::note_input`] — records the latest fingerprint seen
//!   for a named input slot (e.g. a routine's source chunk) so the
//!   driver can report `query.invalidate` when an edit actually changed
//!   a chunk, as opposed to merely re-presenting it.
//! * [`QueryEngine::count_cutoff`] — bumped by the driver when a
//!   downstream memo hit despite an upstream recompute (the cutoff
//!   observably fired).
//!
//! Two soundness rules are inherited from the rest of the workspace:
//! results computed under an exhausted budget (degraded) are **never
//! cached** — same rule as the subsumption memo in
//! `crates/sections/src/intern.rs` — and keys are 64-bit FNV-1a
//! fingerprints of the complete input, so collisions alias. That risk
//! (~2⁻⁶⁴ per key pair) is accepted deliberately, as the serve cache's
//! documentation discusses; unlike the serve LRU there is no full-key
//! guard here because the "key" *is* the content.

use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a over `bytes` — the same content-addressing primitive as the
/// serve cache (`crates/serve/src/cache.rs`).
pub fn fingerprint(bytes: &[u8]) -> u64 {
    extend(FNV_OFFSET, bytes)
}

/// Continues an FNV-1a hash over more bytes, so multi-part keys can be
/// built without intermediate allocation.
pub fn extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Folds a 64-bit value (typically another fingerprint) into a hash.
/// Length-prefixed framing is unnecessary: every `mix` operand is a
/// fixed 8 bytes.
pub fn mix(hash: u64, value: u64) -> u64 {
    extend(hash, &value.to_be_bytes())
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// What the fingerprint recorded for an input slot did on this
/// presentation. `Changed` means a previously-seen slot arrived with a
/// different fingerprint — the definition of an invalidating edit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputChange {
    /// First time this slot has been seen.
    Fresh,
    /// Same fingerprint as last time; everything keyed on it will hit.
    Unchanged,
    /// Fingerprint differs from the previous presentation.
    Changed,
}

/// The result of a query computation, as returned by the closure passed
/// to [`QueryEngine::memo`].
pub struct Computed<T> {
    /// The value to return (and possibly cache).
    pub value: T,
    /// Approximate heap footprint, charged against the engine's byte cap.
    pub bytes: u64,
    /// `false` for results that must not be reused — e.g. anything
    /// produced under an exhausted budget (degraded). Uncacheable
    /// results are returned to the caller but leave the memo untouched.
    pub cacheable: bool,
}

/// Monotonic engine totals, independent of any `gcomm-obs` registry so
/// property tests can observe the engine without installing one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    pub hits: u64,
    pub misses: u64,
    pub cutoffs: u64,
    pub invalidations: u64,
    pub evictions: u64,
}

struct Slot {
    value: Arc<dyn Any + Send + Sync>,
    bytes: u64,
    tick: u64,
}

struct Inner {
    /// Memoized values keyed by (query name, content fingerprint).
    slots: HashMap<(&'static str, u64), Slot>,
    /// Recency order: tick → slot key. BTreeMap so the oldest entry is
    /// `first_key_value`, mirroring the serve LRU.
    order: BTreeMap<u64, (&'static str, u64)>,
    /// Last fingerprint presented per input slot.
    inputs: HashMap<u64, u64>,
    used_bytes: u64,
    tick: u64,
}

/// Fixed per-entry overhead charged on top of the caller-reported value
/// footprint (map entries, Arc headers, recency bookkeeping).
const ENTRY_OVERHEAD: u64 = 96;

/// A byte-capped, thread-safe memo table for content-addressed queries.
pub struct QueryEngine {
    inner: Mutex<Inner>,
    cap_bytes: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    cutoffs: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("QueryEngine")
            .field("cap_bytes", &self.cap_bytes)
            .field("stats", &s)
            .finish()
    }
}

impl QueryEngine {
    /// Creates an engine holding at most `cap_bytes` of memoized values
    /// (as reported by each query's own footprint estimate).
    pub fn new(cap_bytes: u64) -> Self {
        QueryEngine {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                order: BTreeMap::new(),
                inputs: HashMap::new(),
                used_bytes: 0,
                tick: 0,
            }),
            cap_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            cutoffs: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up `(query, key)`; on a miss, runs `compute` *outside* the
    /// engine lock and inserts the result if it is cacheable. Returns
    /// the value and whether this call was a hit. Queries must be pure:
    /// two threads racing on the same key may both compute, and the
    /// first to insert wins (the loser adopts the winner's value so all
    /// callers alias one `Arc`).
    pub fn memo<T, F>(&self, query: &'static str, key: u64, compute: F) -> (Arc<T>, bool)
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> Computed<T>,
    {
        if let Some(value) = self.probe::<T>(query, key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            gcomm_obs::count("query.hit", 1);
            return (value, true);
        }

        let computed = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        gcomm_obs::count("query.miss", 1);
        let value = Arc::new(computed.value);

        if computed.cacheable {
            let stored = self.insert(query, key, value.clone(), computed.bytes);
            (stored, false)
        } else {
            (value, false)
        }
    }

    /// A hit-only probe: returns the memoized value without computing.
    pub fn probe<T>(&self, query: &'static str, key: u64) -> Option<Arc<T>>
    where
        T: Send + Sync + 'static,
    {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        let slot = inner.slots.get_mut(&(query, key))?;
        let value = Arc::clone(&slot.value).downcast::<T>().ok()?;
        let old_tick = std::mem::replace(&mut slot.tick, tick);
        inner.order.remove(&old_tick);
        inner.order.insert(tick, (query, key));
        Some(value)
    }

    fn insert<T>(&self, query: &'static str, key: u64, value: Arc<T>, bytes: u64) -> Arc<T>
    where
        T: Send + Sync + 'static,
    {
        let charged = bytes.saturating_add(ENTRY_OVERHEAD);
        if charged > self.cap_bytes {
            return value; // larger than the whole cache: serve uncached
        }
        let mut inner = self.inner.lock().unwrap();
        // A racing compute may have inserted first; adopt its value so
        // every caller shares one allocation.
        if let Some(slot) = inner.slots.get(&(query, key)) {
            if let Ok(existing) = Arc::clone(&slot.value).downcast::<T>() {
                return existing;
            }
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.slots.insert(
            (query, key),
            Slot {
                value: value.clone() as Arc<dyn Any + Send + Sync>,
                bytes: charged,
                tick,
            },
        );
        inner.order.insert(tick, (query, key));
        inner.used_bytes += charged;
        let mut evicted = 0u64;
        while inner.used_bytes > self.cap_bytes {
            let Some((&oldest, &victim)) = inner.order.first_key_value() else {
                break;
            };
            inner.order.remove(&oldest);
            if let Some(slot) = inner.slots.remove(&victim) {
                inner.used_bytes -= slot.bytes;
                evicted += 1;
            }
        }
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        value
    }

    /// Records the fingerprint presented for input slot `slot` (itself a
    /// fingerprint of the slot's identity, e.g. a routine name). Returns
    /// what changed; a `Changed` result bumps `query.invalidate`.
    pub fn note_input(&self, slot: u64, fp: u64) -> InputChange {
        let mut inner = self.inner.lock().unwrap();
        let change = match inner.inputs.insert(slot, fp) {
            None => InputChange::Fresh,
            Some(prev) if prev == fp => InputChange::Unchanged,
            Some(_) => InputChange::Changed,
        };
        drop(inner);
        if change == InputChange::Changed {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            gcomm_obs::count("query.invalidate", 1);
        }
        change
    }

    /// Records that early cutoff observably fired: an upstream pass
    /// recomputed but a downstream memo still hit because the upstream
    /// output's fingerprint was unchanged.
    pub fn count_cutoff(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.cutoffs.fetch_add(n, Ordering::Relaxed);
        gcomm_obs::count("query.cutoff", n);
    }

    /// Monotonic totals since construction.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            cutoffs: self.cutoffs.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Bytes currently charged against the cap.
    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().unwrap().used_bytes
    }

    /// Number of live memo entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().slots.len()
    }

    /// True when the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn fingerprint_matches_serve_fnv() {
        // Same constants as crates/serve/src/cache.rs; spot-check a
        // known vector (FNV-1a 64 of "a").
        assert_eq!(fingerprint(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fingerprint(b""), FNV_OFFSET);
        assert_ne!(fingerprint(b"ab"), fingerprint(b"ba"));
    }

    #[test]
    fn mix_is_order_sensitive() {
        let a = mix(mix(fingerprint(b"x"), 1), 2);
        let b = mix(mix(fingerprint(b"x"), 2), 1);
        assert_ne!(a, b);
    }

    #[test]
    fn memo_hits_second_time() {
        let eng = QueryEngine::new(1 << 20);
        let calls = AtomicUsize::new(0);
        let f = || {
            calls.fetch_add(1, Ordering::SeqCst);
            Computed {
                value: 42u64,
                bytes: 8,
                cacheable: true,
            }
        };
        let (v1, hit1) = eng.memo("t.answer", 7, f);
        let (v2, hit2) = eng.memo::<u64, _>("t.answer", 7, || unreachable!());
        assert_eq!((*v1, hit1), (42, false));
        assert_eq!((*v2, hit2), (42, true));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(
            eng.stats(),
            EngineStats {
                hits: 1,
                misses: 1,
                ..EngineStats::default()
            }
        );
    }

    #[test]
    fn distinct_queries_do_not_alias() {
        let eng = QueryEngine::new(1 << 20);
        let mk = |v: u64| {
            move || Computed {
                value: v,
                bytes: 8,
                cacheable: true,
            }
        };
        eng.memo("t.a", 1, mk(10));
        eng.memo("t.b", 1, mk(20));
        let (a, _) = eng.memo::<u64, _>("t.a", 1, || unreachable!());
        let (b, _) = eng.memo::<u64, _>("t.b", 1, || unreachable!());
        assert_eq!((*a, *b), (10, 20));
    }

    #[test]
    fn uncacheable_results_never_stored() {
        let eng = QueryEngine::new(1 << 20);
        let (_, hit) = eng.memo("t.degraded", 9, || Computed {
            value: 1u32,
            bytes: 4,
            cacheable: false,
        });
        assert!(!hit);
        assert!(eng.is_empty());
        let (_, hit) = eng.memo("t.degraded", 9, || Computed {
            value: 1u32,
            bytes: 4,
            cacheable: false,
        });
        assert!(!hit, "uncacheable result must recompute every time");
    }

    #[test]
    fn lru_evicts_oldest_under_byte_cap() {
        // Cap fits exactly two entries (bytes + ENTRY_OVERHEAD each).
        let per = 100 + ENTRY_OVERHEAD;
        let eng = QueryEngine::new(2 * per);
        let mk = |v: u64| {
            move || Computed {
                value: v,
                bytes: 100,
                cacheable: true,
            }
        };
        eng.memo("t.k", 1, mk(1));
        eng.memo("t.k", 2, mk(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(eng.probe::<u64>("t.k", 1).is_some());
        eng.memo("t.k", 3, mk(3));
        assert_eq!(eng.stats().evictions, 1);
        assert!(eng.probe::<u64>("t.k", 1).is_some());
        assert!(eng.probe::<u64>("t.k", 2).is_none());
        assert!(eng.probe::<u64>("t.k", 3).is_some());
        assert!(eng.used_bytes() <= 2 * per);
    }

    #[test]
    fn oversized_value_served_uncached() {
        let eng = QueryEngine::new(64);
        let (v, hit) = eng.memo("t.big", 1, || Computed {
            value: 7u8,
            bytes: 1 << 20,
            cacheable: true,
        });
        assert_eq!((*v, hit), (7, false));
        assert!(eng.is_empty());
    }

    #[test]
    fn note_input_tracks_changes() {
        let eng = QueryEngine::new(1 << 20);
        let slot = fingerprint(b"routine:main");
        assert_eq!(eng.note_input(slot, 11), InputChange::Fresh);
        assert_eq!(eng.note_input(slot, 11), InputChange::Unchanged);
        assert_eq!(eng.note_input(slot, 12), InputChange::Changed);
        assert_eq!(eng.note_input(slot, 12), InputChange::Unchanged);
        assert_eq!(eng.stats().invalidations, 1);
    }

    #[test]
    fn racing_computes_share_one_value() {
        let eng = Arc::new(QueryEngine::new(1 << 20));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let eng = Arc::clone(&eng);
            handles.push(std::thread::spawn(move || {
                let (v, _) = eng.memo("t.race", 5, || Computed {
                    value: 99u64,
                    bytes: 8,
                    cacheable: true,
                });
                Arc::as_ptr(&v) as usize
            }));
        }
        let ptrs: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All callers that arrived after the first insert alias it; the
        // value itself is identical for everyone by purity.
        assert!(ptrs.iter().all(|&p| p != 0));
        assert_eq!(eng.len(), 1);
    }
}
