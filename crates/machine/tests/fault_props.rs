//! Property tests for the fault-injection simulator:
//!
//! * determinism — the same `FaultPlan` seed on the same program yields an
//!   identical `SimReport`,
//! * zero-fault regression — a quiet plan is bit-identical to the plain
//!   simulator,
//! * sanity — fault injection never makes communication cheaper, and never
//!   touches compute time.

use proptest::prelude::*;

use gcomm_machine::{
    simulate, simulate_with_faults, CommPhase, CommProgram, FaultPlan, Msg, MsgKind, NetworkModel,
    PhaseItem,
};

fn msg_strategy() -> BoxedStrategy<Msg> {
    (1u64..65536, 1u64..6, 1u64..8, any::<bool>())
        .prop_map(|(bytes, rounds, pieces, p2p)| {
            Msg::flat(
                bytes as f64,
                if p2p { 1 } else { rounds },
                if p2p {
                    MsgKind::PointToPoint
                } else {
                    MsgKind::Collective
                },
                pieces,
            )
        })
        .boxed()
}

fn item_strategy() -> BoxedStrategy<PhaseItem> {
    prop_oneof![
        (1u64..100000, 1u64..100000).prop_map(|(flops, mem)| PhaseItem::Compute {
            flops: flops as f64,
            mem_bytes: mem as f64,
        }),
        prop::collection::vec(msg_strategy(), 1..4)
            .prop_map(|msgs| PhaseItem::Comm(CommPhase { msgs })),
        (1u64..8, prop::collection::vec(msg_strategy(), 1..3)).prop_map(|(trips, msgs)| {
            PhaseItem::Loop {
                trips,
                body: vec![PhaseItem::Comm(CommPhase { msgs })],
            }
        }),
    ]
    .boxed()
}

fn prog_strategy() -> BoxedStrategy<CommProgram> {
    prop::collection::vec(item_strategy(), 1..6)
        .prop_map(|items| CommProgram {
            name: "prop".into(),
            items,
        })
        .boxed()
}

fn plan_strategy() -> BoxedStrategy<FaultPlan> {
    (
        any::<u64>(),
        0u32..40,  // loss percent
        0u32..50,  // degrade percent
        1u32..10,  // degrade factor tenths
        0u32..50,  // straggle percent
        10u32..50, // straggle slowdown tenths
        1u32..7,   // retries
    )
        .prop_map(|(seed, loss, dp, df, sp, ss, retries)| {
            let mut plan = FaultPlan::with_loss(seed, loss as f64 / 100.0);
            plan.degrade_prob = dp as f64 / 100.0;
            plan.degrade_factor = df as f64 / 10.0;
            plan.straggle_prob = sp as f64 / 100.0;
            plan.straggle_slowdown = ss as f64 / 10.0;
            plan.retry.max_attempts = retries;
            plan
        })
        .boxed()
}

fn net_strategy() -> BoxedStrategy<NetworkModel> {
    prop_oneof![Just(NetworkModel::sp2()), Just(NetworkModel::now_myrinet()),].boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn same_seed_yields_identical_report(
        prog in prog_strategy(),
        plan in plan_strategy(),
        net in net_strategy(),
    ) {
        let a = simulate_with_faults(&prog, &net, &plan);
        let b = simulate_with_faults(&prog, &net, &plan);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn quiet_plan_matches_plain_simulator(
        prog in prog_strategy(),
        net in net_strategy(),
        seed in any::<u64>(),
    ) {
        // Any quiet plan, whatever its seed or retry settings, must take
        // the closed-form path and reproduce simulate() bit for bit.
        let mut plan = FaultPlan::quiet();
        plan.seed = seed;
        plan.retry.max_attempts = 1 + (seed % 7) as u32;
        let rep = simulate_with_faults(&prog, &net, &plan);
        let base = simulate(&prog, &net);
        prop_assert_eq!(rep.result, base);
        prop_assert!(rep.faults.is_clean());
    }

    #[test]
    fn faults_never_make_runs_cheaper(
        prog in prog_strategy(),
        plan in plan_strategy(),
        net in net_strategy(),
    ) {
        let clean = simulate(&prog, &net);
        let faulty = simulate_with_faults(&prog, &net, &plan);
        // Communication can only get slower; compute is untouched; traffic
        // never shrinks (retransmissions only add bytes).
        prop_assert!(faulty.result.comm_us >= clean.comm_us - 1e-9);
        prop_assert!((faulty.result.compute_us - clean.compute_us).abs() < 1e-9);
        prop_assert!(faulty.result.bytes >= clean.bytes - 1e-9);
        prop_assert!(faulty.result.messages >= clean.messages);
    }

    #[test]
    fn spec_roundtrip_preserves_quietness(
        loss in 0u32..=100,
        seed in any::<u64>(),
    ) {
        let spec = format!("seed={seed},loss={}", loss as f64 / 100.0);
        let plan = FaultPlan::parse(&spec).unwrap();
        prop_assert_eq!(plan.is_quiet(), loss == 0);
        prop_assert_eq!(plan.seed, seed);
    }
}
