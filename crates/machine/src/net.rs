//! Parametric network and memory-copy models.
//!
//! A message of `b` bytes costs `startup + b / bw(b)` where the effective
//! bandwidth follows the classic half-performance-length curve
//! `bw(b) = peak · b / (b + n_half)`. Local buffer copies (`bcopy`) run at
//! cache bandwidth while the buffer fits in cache and at memory bandwidth
//! beyond — the cliff the paper's Figure 5 shows and that motivates the
//! 20 KB combining threshold (§4.7).

/// A machine model: network, memory copy, and CPU parameters.
///
/// Presets [`NetworkModel::sp2`] and [`NetworkModel::now_myrinet`] are
/// calibrated to the qualitative features the paper reports: the SP2 has
/// lower per-message overhead and higher bandwidth than the NOW (§5), and
/// both amortize most startup cost well below the cache limit (§3).
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// Human-readable name.
    pub name: String,
    /// Per-message startup cost in microseconds (sender + receiver
    /// overhead plus latency).
    pub startup_us: f64,
    /// Asymptotic network bandwidth in MB/s.
    pub peak_bw_mb: f64,
    /// Half-performance message length in bytes.
    pub half_size: f64,
    /// `bcopy` bandwidth while buffers fit in cache, MB/s.
    pub bcopy_cache_mb: f64,
    /// `bcopy` bandwidth beyond the cache, MB/s.
    pub bcopy_mem_mb: f64,
    /// Data cache size in bytes.
    pub cache_bytes: u64,
    /// Sustained CPU floating-point rate in MFLOP/s.
    pub cpu_mflops: f64,
    /// Sustained memory bandwidth for streaming computation, MB/s.
    pub mem_bw_mb: f64,
}

impl NetworkModel {
    /// IBM SP2 with the MPL message-passing library (paper §3, Figure 5;
    /// Stunkel et al. and Snir et al. report ≈40 µs short-message latency
    /// and ≈35 MB/s sustained bandwidth for MPL on the SP2 high-performance
    /// switch).
    pub fn sp2() -> Self {
        NetworkModel {
            name: "SP2/MPL".into(),
            startup_us: 45.0,
            peak_bw_mb: 34.0,
            half_size: 3500.0,
            bcopy_cache_mb: 320.0,
            bcopy_mem_mb: 80.0,
            cache_bytes: 128 * 1024,
            cpu_mflops: 50.0,
            mem_bw_mb: 150.0,
        }
    }

    /// Berkeley NOW: SPARC workstations, Myrinet, MPICH (paper §3; Keeton
    /// et al. report high MPI overheads on this platform — roughly 3× the
    /// SP2's — with lower sustained bandwidth).
    pub fn now_myrinet() -> Self {
        NetworkModel {
            name: "NOW/MPICH".into(),
            startup_us: 600.0,
            peak_bw_mb: 12.0,
            half_size: 6000.0,
            bcopy_cache_mb: 180.0,
            bcopy_mem_mb: 45.0,
            cache_bytes: 64 * 1024,
            cpu_mflops: 30.0,
            mem_bw_mb: 80.0,
        }
    }

    /// Effective network bandwidth in MB/s for a message of `bytes`.
    pub fn bandwidth_mb(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        self.peak_bw_mb * bytes / (bytes + self.half_size)
    }

    /// End-to-end time of a single message in microseconds.
    pub fn msg_time_us(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return self.startup_us;
        }
        self.startup_us + bytes / self.bandwidth_mb(bytes).max(1e-9)
        // bytes / (MB/s) = microseconds, since 1 MB/s = 1 byte/µs.
    }

    /// `bcopy` bandwidth in MB/s for a buffer of `bytes`.
    pub fn bcopy_bw_mb(&self, bytes: f64) -> f64 {
        if bytes <= self.cache_bytes as f64 {
            self.bcopy_cache_mb
        } else {
            // Smooth-ish cliff: blend toward memory bandwidth.
            let over = bytes / self.cache_bytes as f64;
            let w = (1.0 / over).clamp(0.0, 1.0);
            self.bcopy_cache_mb * w + self.bcopy_mem_mb * (1.0 - w)
        }
    }

    /// Time to copy `bytes` locally (packing/unpacking combined messages),
    /// in microseconds.
    pub fn bcopy_time_us(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        bytes / self.bcopy_bw_mb(bytes)
    }

    /// A copy of this model with network bandwidth scaled down to
    /// `factor` of its peak — a transiently degraded link. The `bcopy`
    /// bandwidths scale with it: packing buffers ride the same contended
    /// memory system as the NIC during degradation, so a combined
    /// message's copy cost must not stay at full speed while the wire
    /// slows down. Startup cost and compute parameters are unchanged.
    pub fn degraded(&self, factor: f64) -> NetworkModel {
        let f = factor.clamp(1e-6, 1.0);
        NetworkModel {
            peak_bw_mb: self.peak_bw_mb * f,
            bcopy_cache_mb: self.bcopy_cache_mb * f,
            bcopy_mem_mb: self.bcopy_mem_mb * f,
            ..self.clone()
        }
    }

    /// Time to compute `flops` floating-point operations streaming
    /// `mem_bytes` from memory, in microseconds (roofline: the slower of
    /// compute and memory).
    pub fn compute_time_us(&self, flops: f64, mem_bytes: f64) -> f64 {
        let t_cpu = flops / self.cpu_mflops; // MFLOP / (MFLOP/s) = µs
        let t_mem = mem_bytes / self.mem_bw_mb;
        t_cpu.max(t_mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_is_monotone_and_saturating() {
        let m = NetworkModel::sp2();
        let mut prev = 0.0;
        for b in [64.0, 1024.0, 16384.0, 262144.0, 4194304.0] {
            let bw = m.bandwidth_mb(b);
            assert!(bw > prev, "bandwidth must grow with size");
            assert!(bw < m.peak_bw_mb);
            prev = bw;
        }
        assert!(m.bandwidth_mb(4194304.0) > 0.9 * m.peak_bw_mb);
    }

    #[test]
    fn sp2_beats_now_on_overhead_and_bandwidth() {
        let sp2 = NetworkModel::sp2();
        let now = NetworkModel::now_myrinet();
        assert!(sp2.startup_us < now.startup_us);
        assert!(sp2.peak_bw_mb > now.peak_bw_mb);
    }

    #[test]
    fn combining_two_small_messages_wins() {
        // The whole premise of §4.7: one 2b-byte message beats two b-byte
        // messages for small b.
        for m in [NetworkModel::sp2(), NetworkModel::now_myrinet()] {
            let b = 2048.0;
            let two = 2.0 * m.msg_time_us(b);
            let one = m.msg_time_us(2.0 * b) + 2.0 * m.bcopy_time_us(b);
            assert!(one < two, "{}: combining must win at {b} bytes", m.name);
        }
    }

    #[test]
    fn startup_amortizes_below_cache_limit() {
        // §3: "most of the message startup amortization benefits occur at
        // message sizes much smaller than the cache limit".
        let m = NetworkModel::sp2();
        let at_cache = m.cache_bytes as f64;
        let bw_at_tenth = m.bandwidth_mb(at_cache / 10.0);
        assert!(bw_at_tenth > 0.5 * m.peak_bw_mb);
    }

    #[test]
    fn bcopy_cliff_beyond_cache() {
        let m = NetworkModel::sp2();
        let small = m.bcopy_bw_mb(16.0 * 1024.0);
        let large = m.bcopy_bw_mb(8.0 * 1024.0 * 1024.0);
        assert!(small > 2.0 * large, "cache cliff must be visible");
    }

    #[test]
    fn degraded_scales_bcopy_bandwidth_too() {
        // Regression: `degraded` used to scale only the link bandwidth,
        // leaving combined-message pack/unpack copies running at full
        // speed over a degraded fabric.
        let m = NetworkModel::sp2();
        let d = m.degraded(0.25);
        assert!((d.peak_bw_mb - m.peak_bw_mb * 0.25).abs() < 1e-12);
        assert!((d.bcopy_cache_mb - m.bcopy_cache_mb * 0.25).abs() < 1e-12);
        assert!((d.bcopy_mem_mb - m.bcopy_mem_mb * 0.25).abs() < 1e-12);
        // Pin the degraded bcopy time for a 16 KiB in-cache buffer:
        // 16384 B / (320 MB/s * 0.25) = 16384 / 80 = 204.8 µs.
        let t = d.bcopy_time_us(16.0 * 1024.0);
        assert!((t - 204.8).abs() < 1e-9, "degraded bcopy_time_us = {t}");
        // And a copy always takes 1/f longer on the degraded model.
        for b in [512.0, 16384.0, 4.0e6] {
            let ratio = d.bcopy_time_us(b) / m.bcopy_time_us(b);
            assert!((ratio - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn compute_roofline() {
        let m = NetworkModel::sp2();
        // Compute-bound: many flops, few bytes.
        assert!(m.compute_time_us(1000.0, 8.0) > m.compute_time_us(10.0, 8.0));
        // Memory-bound: few flops, many bytes.
        let t = m.compute_time_us(1.0, 1_000_000.0);
        assert!((t - 1_000_000.0 / m.mem_bw_mb).abs() < 1e-9);
    }
}
