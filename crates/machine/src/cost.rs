//! The paper's §6.1 analytic communication cost model.
//!
//! "Let the inverse bandwidth of the network be scaled to one, and the
//! message startup cost be C in these units. The cost of this pattern to a
//! given processor is C times the total number of distinct processors that
//! it sends to or receives from, plus the total volume of data that it
//! sends or receives. […] the cost of a pattern is the maximum cost over
//! all processors, and the cost of a set of patterns is the sum of their
//! costs."
//!
//! Optimally choosing one candidate position per reference under this model
//! is NP-hard (Claim 6.1, by reduction from chromatic number), which is why
//! the compiler uses the greedy heuristic of §4.7. This module provides the
//! model itself so ablations can score schedules analytically.

/// Per-processor load of one communication pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcLoad {
    /// Number of distinct partners the processor exchanges with.
    pub partners: u64,
    /// Total data volume sent or received, in inverse-bandwidth units.
    pub volume: f64,
}

/// A communication pattern: one load entry per processor.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pattern {
    /// Per-processor loads.
    pub loads: Vec<ProcLoad>,
}

impl Pattern {
    /// A symmetric pattern where every one of `p` processors has the same
    /// load (the common case for SPMD shifts and reductions).
    pub fn symmetric(p: u64, partners: u64, volume: f64) -> Self {
        Pattern {
            loads: vec![
                ProcLoad { partners, volume };
                usize::try_from(p).expect("processor count fits usize")
            ],
        }
    }

    /// The §6.1 analytic load of a lowered collective schedule on `p`
    /// processors: every [`crate::sim::SimStep`] is one partner exchange,
    /// its volume weighted by the inverse of the link-tier bandwidth
    /// multiplier (a half-speed link carries twice the inverse-bandwidth
    /// volume). Lets ablations score topology-aware schedules with the
    /// same `C × partners + volume` model the paper uses for flat ones.
    pub fn from_steps(p: u64, steps: &[crate::sim::SimStep]) -> Self {
        let volume: f64 = steps.iter().map(|s| s.bytes / s.bw_mult.max(1e-9)).sum();
        Pattern::symmetric(p, steps.len() as u64, volume)
    }

    /// Cost of the pattern: the maximum per-processor cost (bulk-synchronous
    /// execution waits for the slowest processor).
    pub fn cost(&self, startup_c: f64) -> f64 {
        self.loads
            .iter()
            .map(|l| startup_c * l.partners as f64 + l.volume)
            .fold(0.0, f64::max)
    }
}

/// Cost of a set of patterns: the sum of their costs.
pub fn schedule_cost(patterns: &[Pattern], startup_c: f64) -> f64 {
    patterns.iter().map(|p| p.cost(startup_c)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_steps_counts_partners_and_inverse_bandwidth_volume() {
        use crate::sim::SimStep;
        let steps = [
            SimStep {
                bytes: 100.0,
                startup_mult: 1.0,
                bw_mult: 1.0,
            },
            SimStep {
                bytes: 100.0,
                startup_mult: 1.6,
                bw_mult: 0.5, // half-speed link: double inverse-bw volume
            },
        ];
        let p = Pattern::from_steps(4, &steps);
        assert_eq!(p.loads.len(), 4);
        assert_eq!(p.loads[0].partners, 2);
        assert!((p.loads[0].volume - 300.0).abs() < 1e-12);
        // C = 10: cost = 10·2 + 300.
        assert!((p.cost(10.0) - 320.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_pattern_cost() {
        let p = Pattern::symmetric(4, 2, 100.0);
        // C = 50: cost = 50*2 + 100 = 200.
        assert!((p.cost(50.0) - 200.0).abs() < 1e-12);
    }

    #[test]
    fn max_over_processors() {
        let p = Pattern {
            loads: vec![
                ProcLoad {
                    partners: 1,
                    volume: 10.0,
                },
                ProcLoad {
                    partners: 3,
                    volume: 0.0,
                },
            ],
        };
        // C = 5: proc0 = 15, proc1 = 15 → 15; C = 20: proc1 = 60 wins.
        assert!((p.cost(5.0) - 15.0).abs() < 1e-12);
        assert!((p.cost(20.0) - 60.0).abs() < 1e-12);
    }

    #[test]
    fn combining_reduces_model_cost() {
        // Two separate shift patterns of volume v vs one combined of 2v:
        // 2(C + v) vs (C + 2v) — combining saves exactly C.
        let c = 100.0;
        let v = 30.0;
        let separate = schedule_cost(
            &[Pattern::symmetric(4, 1, v), Pattern::symmetric(4, 1, v)],
            c,
        );
        let combined = schedule_cost(&[Pattern::symmetric(4, 1, 2.0 * v)], c);
        assert!((separate - combined - c).abs() < 1e-9);
    }

    #[test]
    fn empty_schedule_is_free() {
        assert_eq!(schedule_cost(&[], 10.0), 0.0);
        assert_eq!(Pattern::default().cost(10.0), 0.0);
    }
}
