//! Processor grids and block-distribution ownership arithmetic.

/// A rectangular processor grid (the HPF processors arrangement / template
/// shape onto which distributed dimensions map).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProcGrid {
    /// Extent per grid axis.
    pub dims: Vec<u32>,
}

impl ProcGrid {
    /// A grid with the given axis extents.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero (a grid with no processors is a
    /// programming error).
    pub fn new(dims: Vec<u32>) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "grid extents must be positive");
        ProcGrid { dims }
    }

    /// A near-square factorization of `p` processors over `axes` axes
    /// (e.g. `25 → 5×5`, `8 → 4×2`).
    pub fn balanced(p: u32, axes: usize) -> Self {
        assert!(p > 0 && axes > 0);
        let mut dims = vec![1u32; axes];
        let mut rem = p;
        #[allow(clippy::needless_range_loop)]
        // Greedily peel the largest factor ≤ the remaining axes' fair share.
        for i in 0..axes {
            let axes_left = (axes - i) as u32;
            let target = (rem as f64).powf(1.0 / axes_left as f64).round() as u32;
            let mut best = 1;
            for f in 1..=rem {
                if rem.is_multiple_of(f) && f <= target.max(1) {
                    best = f;
                }
            }
            dims[i] = best.max(1);
            rem /= dims[i];
        }
        dims[0] *= rem; // absorb any leftover
        dims.sort_unstable_by(|a, b| b.cmp(a));
        ProcGrid::new(dims)
    }

    /// Total processor count.
    pub fn nproc(&self) -> u64 {
        self.dims.iter().map(|&d| d as u64).product()
    }

    /// Extent of one axis.
    pub fn axis(&self, i: usize) -> u32 {
        self.dims[i]
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Size of the local block of a BLOCK-distributed extent `n` on this
    /// axis (ceiling division, as HPF prescribes).
    pub fn block_size(&self, axis: usize, n: u64) -> u64 {
        let p = self.dims[axis] as u64;
        n.div_ceil(p)
    }

    /// Owner (grid coordinate along `axis`) of index `i` (0-based) of a
    /// BLOCK-distributed extent `n`.
    pub fn block_owner(&self, axis: usize, n: u64, i: u64) -> u32 {
        let b = self.block_size(axis, n).max(1);
        ((i / b) as u32).min(self.dims[axis] - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_factorizations() {
        assert_eq!(ProcGrid::balanced(25, 2).dims, vec![5, 5]);
        assert_eq!(ProcGrid::balanced(8, 2).nproc(), 8);
        assert_eq!(ProcGrid::balanced(16, 2).dims, vec![4, 4]);
        assert_eq!(ProcGrid::balanced(7, 2).nproc(), 7);
        assert_eq!(ProcGrid::balanced(1, 1).dims, vec![1]);
    }

    #[test]
    fn block_ownership() {
        let g = ProcGrid::new(vec![4]);
        // n = 10, block = 3: indices 0-2 → p0, 3-5 → p1, 6-8 → p2, 9 → p3.
        assert_eq!(g.block_size(0, 10), 3);
        assert_eq!(g.block_owner(0, 10, 0), 0);
        assert_eq!(g.block_owner(0, 10, 5), 1);
        assert_eq!(g.block_owner(0, 10, 9), 3);
    }

    #[test]
    fn block_owner_clamps_to_grid() {
        let g = ProcGrid::new(vec![3]);
        // n = 3, block = 1; index 2 → p2.
        assert_eq!(g.block_owner(0, 3, 2), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_panics() {
        let _ = ProcGrid::new(vec![0, 2]);
    }
}
