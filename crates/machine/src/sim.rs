//! Bulk-synchronous simulator for communication programs.
//!
//! A [`CommProgram`] is a loop-structured sequence of compute phases and
//! communication phases, produced by the code generator from a placed
//! communication schedule at a *concrete* problem size. The simulator
//! executes it under a [`NetworkModel`] in the paper's bulk-synchronous
//! SPMD regime (overlap disabled, §5: "measurements were made with overlap
//! disabled to clearly account for CPU and network activity") and reports
//! compute time, communication time, message counts, and volume — the
//! quantities behind Figure 10's stacked bars.

use serde::Serialize;

use crate::net::NetworkModel;

/// What kind of communication a message performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MsgKind {
    /// Point-to-point exchange (shift/NNC): one partner per processor.
    PointToPoint,
    /// Reduction/broadcast tree: `rounds` sequential message steps.
    Collective,
}

/// One (possibly combined) message operation executed by every processor.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Msg {
    /// Payload bytes per processor per execution.
    pub bytes: f64,
    /// Sequential message rounds (1 for point-to-point; ⌈log₂ P⌉ for
    /// tree collectives).
    pub rounds: u64,
    /// Kind (used for reporting).
    pub kind: MsgKind,
    /// Number of array sections packed into this message (1 = no packing
    /// copy needed on either side beyond the transfer itself).
    pub pieces: u64,
}

impl Msg {
    /// Time for one execution of this message on `net`, in µs.
    pub fn time_us(&self, net: &NetworkModel) -> f64 {
        let per_round = self.bytes / self.rounds.max(1) as f64;
        let mut t = self.rounds as f64 * net.msg_time_us(per_round);
        if self.pieces > 1 {
            // Pack at the sender and unpack at the receiver.
            t += 2.0 * net.bcopy_time_us(self.bytes);
        }
        t
    }
}

/// A communication phase: messages issued back-to-back by each processor,
/// followed by a barrier (bulk-synchronous).
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct CommPhase {
    /// Messages of the phase.
    pub msgs: Vec<Msg>,
}

/// One item of a communication program.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum PhaseItem {
    /// Local computation: `flops` floating-point operations touching
    /// `mem_bytes` of memory per processor.
    Compute {
        /// Floating-point operations per processor.
        flops: f64,
        /// Memory traffic per processor, bytes.
        mem_bytes: f64,
    },
    /// A communication phase.
    Comm(CommPhase),
    /// A counted loop around nested items.
    Loop {
        /// Trip count.
        trips: u64,
        /// Loop body.
        body: Vec<PhaseItem>,
    },
}

/// A complete executable communication program for one problem size.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct CommProgram {
    /// Program name (for reports).
    pub name: String,
    /// Top-level items.
    pub items: Vec<PhaseItem>,
}

/// Aggregate result of simulating a program.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct SimResult {
    /// Total compute time, µs.
    pub compute_us: f64,
    /// Total communication time, µs.
    pub comm_us: f64,
    /// Dynamic message count (per processor).
    pub messages: u64,
    /// Total bytes communicated (per processor).
    pub bytes: f64,
}

impl SimResult {
    /// Total wall-clock time, µs.
    pub fn total_us(&self) -> f64 {
        self.compute_us + self.comm_us
    }

    /// Fraction of time spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        let t = self.total_us();
        if t <= 0.0 {
            0.0
        } else {
            self.comm_us / t
        }
    }
}

/// Executes `prog` on `net` and accumulates times.
pub fn simulate(prog: &CommProgram, net: &NetworkModel) -> SimResult {
    let mut r = SimResult::default();
    sim_items(&prog.items, net, 1, &mut r);
    r
}

/// Executes `prog` assuming perfect CPU–network overlap within each loop
/// body: per iteration, communication hides under computation (or vice
/// versa), so a body costs `max(compute, comm)` instead of their sum.
///
/// This is the §6 regime the paper anticipates for future machines ("if
/// the CPU–network overlap can be exploited more effectively"), under which
/// the trade-off between combining and overlap changes and the subset
/// elimination step would have to be dropped. The returned
/// [`SimResult::compute_us`]/[`SimResult::comm_us`] split is unchanged;
/// use [`OverlapResult::total_us`] for the overlapped wall-clock.
pub fn simulate_overlapped(prog: &CommProgram, net: &NetworkModel) -> OverlapResult {
    let eager = simulate(prog, net);
    let total = overlap_items(&prog.items, net);
    OverlapResult {
        breakdown: eager,
        total_us: total,
    }
}

/// Result of an overlapped simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct OverlapResult {
    /// The non-overlapped component breakdown (same as [`simulate`]).
    pub breakdown: SimResult,
    /// Wall-clock with per-body overlap applied.
    pub total_us: f64,
}

impl OverlapResult {
    /// Wall-clock time, µs.
    pub fn total_us(&self) -> f64 {
        self.total_us
    }

    /// Fraction of the serial communication time hidden by overlap.
    pub fn hidden_fraction(&self) -> f64 {
        let serial = self.breakdown.total_us();
        if self.breakdown.comm_us <= 0.0 {
            return 0.0;
        }
        ((serial - self.total_us) / self.breakdown.comm_us).clamp(0.0, 1.0)
    }
}

/// Time of one execution of a body with compute/comm overlapping inside it;
/// nested loops are opaque (their own overlap already applied).
fn overlap_items(items: &[PhaseItem], net: &NetworkModel) -> f64 {
    let mut compute = 0.0f64;
    let mut comm = 0.0f64;
    for item in items {
        match item {
            PhaseItem::Compute { flops, mem_bytes } => {
                compute += net.compute_time_us(*flops, *mem_bytes);
            }
            PhaseItem::Comm(phase) => {
                for m in &phase.msgs {
                    comm += m.time_us(net);
                }
            }
            PhaseItem::Loop { trips, body } => {
                compute += *trips as f64 * overlap_items(body, net);
            }
        }
    }
    compute.max(comm)
}

fn sim_items(items: &[PhaseItem], net: &NetworkModel, mult: u64, r: &mut SimResult) {
    for item in items {
        match item {
            PhaseItem::Compute { flops, mem_bytes } => {
                r.compute_us += mult as f64 * net.compute_time_us(*flops, *mem_bytes);
            }
            PhaseItem::Comm(phase) => {
                for m in &phase.msgs {
                    r.comm_us += mult as f64 * m.time_us(net);
                    r.messages += mult * m.rounds.max(1);
                    r.bytes += mult as f64 * m.bytes;
                }
            }
            PhaseItem::Loop { trips, body } => {
                sim_items(body, net, mult.saturating_mul(*trips), r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p2p(bytes: f64) -> Msg {
        Msg {
            bytes,
            rounds: 1,
            kind: MsgKind::PointToPoint,
            pieces: 1,
        }
    }

    #[test]
    fn loop_multiplies_costs() {
        let net = NetworkModel::sp2();
        let prog = CommProgram {
            name: "t".into(),
            items: vec![PhaseItem::Loop {
                trips: 10,
                body: vec![
                    PhaseItem::Compute {
                        flops: 100.0,
                        mem_bytes: 800.0,
                    },
                    PhaseItem::Comm(CommPhase {
                        msgs: vec![p2p(1024.0)],
                    }),
                ],
            }],
        };
        let r = simulate(&prog, &net);
        assert_eq!(r.messages, 10);
        assert!((r.bytes - 10240.0).abs() < 1e-9);
        let single = net.msg_time_us(1024.0);
        assert!((r.comm_us - 10.0 * single).abs() < 1e-6);
    }

    #[test]
    fn combined_message_beats_separate_messages() {
        let net = NetworkModel::now_myrinet();
        let sep = CommProgram {
            name: "sep".into(),
            items: vec![PhaseItem::Comm(CommPhase {
                msgs: vec![p2p(2048.0), p2p(2048.0)],
            })],
        };
        let mut comb_msg = p2p(4096.0);
        comb_msg.pieces = 2;
        let comb = CommProgram {
            name: "comb".into(),
            items: vec![PhaseItem::Comm(CommPhase {
                msgs: vec![comb_msg],
            })],
        };
        let rs = simulate(&sep, &net);
        let rc = simulate(&comb, &net);
        assert!(rc.comm_us < rs.comm_us);
        assert_eq!(rc.messages, 1);
        assert_eq!(rs.messages, 2);
    }

    #[test]
    fn collective_rounds_accumulate() {
        let net = NetworkModel::sp2();
        let red = Msg {
            bytes: 32.0,
            rounds: 5, // log2(25) rounded up
            kind: MsgKind::Collective,
            pieces: 1,
        };
        let prog = CommProgram {
            name: "r".into(),
            items: vec![PhaseItem::Comm(CommPhase { msgs: vec![red] })],
        };
        let r = simulate(&prog, &net);
        assert_eq!(r.messages, 5);
        assert!(r.comm_us > 4.0 * net.startup_us);
    }

    #[test]
    fn nested_loops_multiply() {
        let net = NetworkModel::sp2();
        let prog = CommProgram {
            name: "n".into(),
            items: vec![PhaseItem::Loop {
                trips: 3,
                body: vec![PhaseItem::Loop {
                    trips: 4,
                    body: vec![PhaseItem::Comm(CommPhase {
                        msgs: vec![p2p(8.0)],
                    })],
                }],
            }],
        };
        assert_eq!(simulate(&prog, &net).messages, 12);
    }

    #[test]
    fn overlap_hides_communication_under_compute() {
        let net = NetworkModel::sp2();
        let prog = CommProgram {
            name: "o".into(),
            items: vec![PhaseItem::Loop {
                trips: 10,
                body: vec![
                    PhaseItem::Compute {
                        flops: 100_000.0,
                        mem_bytes: 1000.0,
                    },
                    PhaseItem::Comm(CommPhase {
                        msgs: vec![p2p(256.0)],
                    }),
                ],
            }],
        };
        let eager = simulate(&prog, &net);
        let lazy = simulate_overlapped(&prog, &net);
        // Compute dominates: comm fully hidden.
        assert!(lazy.total_us() < eager.total_us());
        assert!((lazy.total_us() - eager.compute_us).abs() < 1e-6);
        assert!((lazy.hidden_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_cannot_beat_the_longer_side() {
        let net = NetworkModel::now_myrinet();
        // Comm-dominated: overlap hides the (smaller) compute instead.
        let prog = CommProgram {
            name: "o2".into(),
            items: vec![
                PhaseItem::Compute {
                    flops: 10.0,
                    mem_bytes: 10.0,
                },
                PhaseItem::Comm(CommPhase {
                    msgs: vec![p2p(1024.0), p2p(1024.0)],
                }),
            ],
        };
        let eager = simulate(&prog, &net);
        let lazy = simulate_overlapped(&prog, &net);
        assert!(lazy.total_us() >= eager.comm_us - 1e-9);
        assert!(lazy.total_us() <= eager.total_us() + 1e-9);
    }

    #[test]
    fn comm_fraction_bounds() {
        let r = SimResult {
            compute_us: 75.0,
            comm_us: 25.0,
            messages: 1,
            bytes: 1.0,
        };
        assert!((r.comm_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(SimResult::default().comm_fraction(), 0.0);
    }
}
