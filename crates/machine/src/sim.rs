//! Bulk-synchronous simulator for communication programs.
//!
//! A [`CommProgram`] is a loop-structured sequence of compute phases and
//! communication phases, produced by the code generator from a placed
//! communication schedule at a *concrete* problem size. The simulator
//! executes it under a [`NetworkModel`] in the paper's bulk-synchronous
//! SPMD regime (overlap disabled, §5: "measurements were made with overlap
//! disabled to clearly account for CPU and network activity") and reports
//! compute time, communication time, message counts, and volume — the
//! quantities behind Figure 10's stacked bars.

use crate::fault::{FaultPlan, Rng64};
use crate::net::NetworkModel;

/// What kind of communication a message performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// Point-to-point exchange (shift/NNC): one partner per processor.
    PointToPoint,
    /// Reduction/broadcast tree: `rounds` sequential message steps.
    Collective,
}

/// One point-to-point step of a lowered collective schedule.
///
/// A collective backend (gcomm-coll) resolves the topology into per-step
/// link multipliers so the simulator stays topology-agnostic: a step of
/// `bytes` costs `startup_us · startup_mult + bytes / (bw(bytes) · bw_mult)`.
/// With both multipliers at 1.0 a step prices exactly like
/// [`NetworkModel::msg_time_us`] on the flat model.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStep {
    /// Wire bytes carried by this step.
    pub bytes: f64,
    /// Startup-cost multiplier of the link tier this step crosses.
    pub startup_mult: f64,
    /// Bandwidth multiplier of the link tier this step crosses.
    pub bw_mult: f64,
}

impl SimStep {
    /// Time of this step on `net`, in µs.
    pub fn time_us(&self, net: &NetworkModel) -> f64 {
        if self.bytes <= 0.0 {
            return net.startup_us * self.startup_mult;
        }
        net.startup_us * self.startup_mult
            + self.bytes / (net.bandwidth_mb(self.bytes) * self.bw_mult).max(1e-9)
    }
}

/// One (possibly combined) message operation executed by every processor.
#[derive(Debug, Clone, PartialEq)]
pub struct Msg {
    /// Payload bytes per processor per execution. This is the *logical*
    /// payload: a collective lowering may move more wire bytes (see
    /// [`Msg::steps`]) but the payload accounted to the program is the
    /// same under every algorithm.
    pub bytes: f64,
    /// Sequential message rounds (1 for point-to-point; ⌈log₂ P⌉ for
    /// tree collectives; `steps.len()` when lowered by gcomm-coll).
    pub rounds: u64,
    /// Kind (used for reporting).
    pub kind: MsgKind,
    /// Number of array sections packed into this message (1 = no packing
    /// copy needed on either side beyond the transfer itself).
    pub pieces: u64,
    /// Concrete lowered schedule from the collective backend. Empty means
    /// the legacy flat-model pricing (`rounds` equal splits of `bytes`).
    pub steps: Vec<SimStep>,
}

impl Msg {
    /// A legacy (flat-model) message with no lowered schedule.
    pub fn flat(bytes: f64, rounds: u64, kind: MsgKind, pieces: u64) -> Msg {
        Msg {
            bytes,
            rounds,
            kind,
            pieces,
            steps: Vec::new(),
        }
    }

    /// Time for one execution of this message on `net`, in µs.
    pub fn time_us(&self, net: &NetworkModel) -> f64 {
        let mut t = if self.steps.is_empty() {
            let per_round = self.bytes / self.rounds.max(1) as f64;
            self.rounds as f64 * net.msg_time_us(per_round)
        } else {
            self.steps.iter().map(|s| s.time_us(net)).sum()
        };
        if self.pieces > 1 {
            // Pack at the sender and unpack at the receiver.
            t += 2.0 * net.bcopy_time_us(self.bytes);
        }
        t
    }
}

/// A communication phase: messages issued back-to-back by each processor,
/// followed by a barrier (bulk-synchronous).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CommPhase {
    /// Messages of the phase.
    pub msgs: Vec<Msg>,
}

/// One item of a communication program.
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseItem {
    /// Local computation: `flops` floating-point operations touching
    /// `mem_bytes` of memory per processor.
    Compute {
        /// Floating-point operations per processor.
        flops: f64,
        /// Memory traffic per processor, bytes.
        mem_bytes: f64,
    },
    /// A communication phase.
    Comm(CommPhase),
    /// A counted loop around nested items.
    Loop {
        /// Trip count.
        trips: u64,
        /// Loop body.
        body: Vec<PhaseItem>,
    },
}

/// A complete executable communication program for one problem size.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CommProgram {
    /// Program name (for reports).
    pub name: String,
    /// Top-level items.
    pub items: Vec<PhaseItem>,
}

/// Aggregate result of simulating a program.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimResult {
    /// Total compute time, µs.
    pub compute_us: f64,
    /// Total communication time, µs.
    pub comm_us: f64,
    /// Dynamic message count (per processor).
    pub messages: u64,
    /// Total bytes communicated (per processor).
    pub bytes: f64,
}

impl SimResult {
    /// Total wall-clock time, µs.
    pub fn total_us(&self) -> f64 {
        self.compute_us + self.comm_us
    }

    /// Fraction of time spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        let t = self.total_us();
        if t <= 0.0 {
            0.0
        } else {
            self.comm_us / t
        }
    }
}

/// Executes `prog` on `net` and accumulates times.
pub fn simulate(prog: &CommProgram, net: &NetworkModel) -> SimResult {
    let _t = gcomm_obs::time("machine.simulate");
    let mut r = SimResult::default();
    sim_items(&prog.items, net, 1, &mut r);
    gcomm_obs::count("machine.sim.runs", 1);
    gcomm_obs::count("machine.sim.messages", r.messages);
    gcomm_obs::count("machine.sim.comm_us", r.comm_us as u64);
    r
}

/// Executes `prog` assuming perfect CPU–network overlap within each loop
/// body: per iteration, communication hides under computation (or vice
/// versa), so a body costs `max(compute, comm)` instead of their sum.
///
/// This is the §6 regime the paper anticipates for future machines ("if
/// the CPU–network overlap can be exploited more effectively"), under which
/// the trade-off between combining and overlap changes and the subset
/// elimination step would have to be dropped. The returned
/// [`SimResult::compute_us`]/[`SimResult::comm_us`] split is unchanged;
/// use [`OverlapResult::total_us`] for the overlapped wall-clock.
pub fn simulate_overlapped(prog: &CommProgram, net: &NetworkModel) -> OverlapResult {
    let eager = simulate(prog, net);
    let total = overlap_items(&prog.items, net);
    OverlapResult {
        breakdown: eager,
        total_us: total,
    }
}

/// Result of an overlapped simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapResult {
    /// The non-overlapped component breakdown (same as [`simulate`]).
    pub breakdown: SimResult,
    /// Wall-clock with per-body overlap applied.
    pub total_us: f64,
}

impl OverlapResult {
    /// Wall-clock time, µs.
    pub fn total_us(&self) -> f64 {
        self.total_us
    }

    /// Fraction of the serial communication time hidden by overlap.
    pub fn hidden_fraction(&self) -> f64 {
        let serial = self.breakdown.total_us();
        if self.breakdown.comm_us <= 0.0 {
            return 0.0;
        }
        ((serial - self.total_us) / self.breakdown.comm_us).clamp(0.0, 1.0)
    }
}

/// Time of one execution of a body with compute/comm overlapping inside it;
/// nested loops are opaque (their own overlap already applied).
fn overlap_items(items: &[PhaseItem], net: &NetworkModel) -> f64 {
    let mut compute = 0.0f64;
    let mut comm = 0.0f64;
    for item in items {
        match item {
            PhaseItem::Compute { flops, mem_bytes } => {
                compute += net.compute_time_us(*flops, *mem_bytes);
            }
            PhaseItem::Comm(phase) => {
                for m in &phase.msgs {
                    comm += m.time_us(net);
                }
            }
            PhaseItem::Loop { trips, body } => {
                compute += *trips as f64 * overlap_items(body, net);
            }
        }
    }
    compute.max(comm)
}

fn sim_items(items: &[PhaseItem], net: &NetworkModel, mult: u64, r: &mut SimResult) {
    for item in items {
        match item {
            PhaseItem::Compute { flops, mem_bytes } => {
                r.compute_us += mult as f64 * net.compute_time_us(*flops, *mem_bytes);
            }
            PhaseItem::Comm(phase) => {
                for m in &phase.msgs {
                    r.comm_us += mult as f64 * m.time_us(net);
                    r.messages += mult * m.rounds.max(1);
                    r.bytes += mult as f64 * m.bytes;
                }
            }
            PhaseItem::Loop { trips, body } => {
                sim_items(body, net, mult.saturating_mul(*trips), r);
            }
        }
    }
}

/// Fault-recovery counters accumulated by [`simulate_with_faults`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultStats {
    /// Message rounds retransmitted after a loss (beyond the first
    /// attempt of each transfer).
    pub retransmits: u64,
    /// Retransmission timeouts that fired.
    pub timeouts: u64,
    /// Total time spent in backoff waits, µs.
    pub backoff_us: f64,
    /// Combined messages that degraded to per-section sends.
    pub fallbacks: u64,
    /// Transfers abandoned after exhausting the attempt budget.
    pub giveups: u64,
    /// Communication phases run over a degraded link.
    pub degraded_phases: u64,
    /// Communication phases stretched by a straggler processor.
    pub straggled_phases: u64,
}

impl FaultStats {
    /// True when no fault was injected and no recovery action ran.
    pub fn is_clean(&self) -> bool {
        self.retransmits == 0
            && self.timeouts == 0
            && self.fallbacks == 0
            && self.giveups == 0
            && self.degraded_phases == 0
            && self.straggled_phases == 0
    }
}

/// Result of a fault-injected simulation: the usual time/volume breakdown
/// plus recovery statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimReport {
    /// Compute/communication breakdown (communication time includes
    /// retransmissions, timeouts, backoff, and straggler stretch).
    pub result: SimResult,
    /// Fault-recovery counters.
    pub faults: FaultStats,
}

impl SimReport {
    /// Wraps a fault-free result.
    pub fn clean(result: SimResult) -> Self {
        SimReport {
            result,
            faults: FaultStats::default(),
        }
    }

    /// Total wall-clock time, µs.
    pub fn total_us(&self) -> f64 {
        self.result.total_us()
    }
}

/// Executes `prog` on `net` under a fault plan.
///
/// A [`FaultPlan::is_quiet`] plan takes the exact code path of
/// [`simulate`], so the zero-fault report is bit-identical to the
/// fault-free simulator. Otherwise loops are unrolled iteration by
/// iteration and every phase and transmission draws from the plan's seeded
/// RNG: phases may run over a degraded link or stretch behind a straggler,
/// and each message attempt may be lost, triggering timeout, exponential
/// backoff, retransmission, and (for combined messages) the per-section
/// fallback — all per [`crate::fault::RetryPolicy`].
pub fn simulate_with_faults(prog: &CommProgram, net: &NetworkModel, plan: &FaultPlan) -> SimReport {
    if plan.is_quiet() {
        return SimReport::clean(simulate(prog, net));
    }
    let _t = gcomm_obs::time("machine.simulate");
    let mut rng = Rng64::new(plan.seed);
    let mut rep = SimReport::default();
    fault_items(&prog.items, net, plan, &mut rng, &mut rep);
    gcomm_obs::count("machine.sim.runs", 1);
    gcomm_obs::count("machine.sim.messages", rep.result.messages);
    gcomm_obs::count("machine.sim.comm_us", rep.result.comm_us as u64);
    gcomm_obs::count("machine.fault.retransmits", rep.faults.retransmits);
    gcomm_obs::count("machine.fault.timeouts", rep.faults.timeouts);
    gcomm_obs::count("machine.fault.fallbacks", rep.faults.fallbacks);
    gcomm_obs::count("machine.fault.giveups", rep.faults.giveups);
    gcomm_obs::count("machine.fault.degraded_phases", rep.faults.degraded_phases);
    gcomm_obs::count(
        "machine.fault.straggled_phases",
        rep.faults.straggled_phases,
    );
    rep
}

fn fault_items(
    items: &[PhaseItem],
    net: &NetworkModel,
    plan: &FaultPlan,
    rng: &mut Rng64,
    rep: &mut SimReport,
) {
    for item in items {
        match item {
            PhaseItem::Compute { flops, mem_bytes } => {
                rep.result.compute_us += net.compute_time_us(*flops, *mem_bytes);
            }
            PhaseItem::Comm(phase) => fault_phase(phase, net, plan, rng, rep),
            PhaseItem::Loop { trips, body } => {
                // Unlike the closed-form path, every iteration is executed
                // so each draws independent faults.
                for _ in 0..*trips {
                    fault_items(body, net, plan, rng, rep);
                }
            }
        }
    }
}

/// Runs one communication phase: draws phase-level conditions (link
/// degradation, straggler), then sends each message under the retry policy.
/// The straggler stretch applies to the whole phase — in the
/// bulk-synchronous regime the barrier waits for the slowest processor.
fn fault_phase(
    phase: &CommPhase,
    net: &NetworkModel,
    plan: &FaultPlan,
    rng: &mut Rng64,
    rep: &mut SimReport,
) {
    let degraded = plan.degrade_prob > 0.0 && rng.next_f64() < plan.degrade_prob;
    let straggled = plan.straggle_prob > 0.0 && rng.next_f64() < plan.straggle_prob;
    let eff;
    let net = if degraded {
        rep.faults.degraded_phases += 1;
        eff = net.degraded(plan.degrade_factor);
        &eff
    } else {
        net
    };
    let slow = if straggled {
        rep.faults.straggled_phases += 1;
        plan.straggle_slowdown.max(1.0)
    } else {
        1.0
    };
    let mut phase_us = 0.0;
    for m in &phase.msgs {
        phase_us += send_with_retries(m, net, plan, rng, rep, true);
    }
    rep.result.comm_us += phase_us * slow;
}

/// Transmits one message under the retry policy and returns the elapsed
/// time. Counts every attempt's traffic (bytes on the wire, not goodput).
/// When `allow_fallback`, a combined message that keeps timing out is
/// re-sent as individual per-section messages (which retry on their own
/// but cannot fall back further).
fn send_with_retries(
    m: &Msg,
    net: &NetworkModel,
    plan: &FaultPlan,
    rng: &mut Rng64,
    rep: &mut SimReport,
    allow_fallback: bool,
) -> f64 {
    let expected = m.time_us(net);
    let timeout = plan.retry.timeout_us(net, expected);
    let budget = plan.retry.max_attempts.max(1);
    let mut elapsed = 0.0;
    for attempt in 1..=budget {
        rep.result.messages += m.rounds.max(1);
        rep.result.bytes += m.bytes;
        if attempt > 1 {
            rep.faults.retransmits += m.rounds.max(1);
        }
        if rng.next_f64() >= plan.msg_loss {
            return elapsed + expected;
        }
        rep.faults.timeouts += 1;
        elapsed += timeout;
        let backoff = plan.retry.backoff_us(timeout, attempt, rng);
        rep.faults.backoff_us += backoff;
        elapsed += backoff;
        if allow_fallback
            && plan.retry.fallback
            && m.pieces > 1
            && attempt >= plan.retry.fallback_after()
        {
            // Graceful degradation: give up on the combined transfer and
            // send each packed section on its own.
            rep.faults.fallbacks += 1;
            let per_section = Msg {
                bytes: m.bytes / m.pieces as f64,
                rounds: m.rounds,
                kind: m.kind,
                pieces: 1,
                // A lowered schedule degrades section by section: each
                // retries the same route with 1/pieces of the traffic.
                steps: m
                    .steps
                    .iter()
                    .map(|s| SimStep {
                        bytes: s.bytes / m.pieces as f64,
                        ..s.clone()
                    })
                    .collect(),
            };
            for _ in 0..m.pieces {
                elapsed += send_with_retries(&per_section, net, plan, rng, rep, false);
            }
            return elapsed;
        }
    }
    rep.faults.giveups += 1;
    elapsed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p2p(bytes: f64) -> Msg {
        Msg::flat(bytes, 1, MsgKind::PointToPoint, 1)
    }

    #[test]
    fn unit_multiplier_steps_price_like_the_flat_model() {
        // A lowered schedule of `rounds` equal steps over unit-multiplier
        // links is the flat model, bit for bit.
        let net = NetworkModel::sp2();
        let legacy = Msg::flat(4096.0, 2, MsgKind::Collective, 3);
        let lowered = Msg {
            steps: vec![
                SimStep {
                    bytes: 2048.0,
                    startup_mult: 1.0,
                    bw_mult: 1.0,
                };
                2
            ],
            ..legacy.clone()
        };
        assert_eq!(legacy.time_us(&net), lowered.time_us(&net));
    }

    #[test]
    fn step_multipliers_move_cost_the_right_way() {
        let net = NetworkModel::sp2();
        let unit = SimStep {
            bytes: 8192.0,
            startup_mult: 1.0,
            bw_mult: 1.0,
        };
        let slow = SimStep {
            startup_mult: 1.6,
            bw_mult: 0.7,
            ..unit.clone()
        };
        let fast = SimStep {
            startup_mult: 0.4,
            bw_mult: 2.0,
            ..unit.clone()
        };
        assert!(fast.time_us(&net) < unit.time_us(&net));
        assert!(unit.time_us(&net) < slow.time_us(&net));
    }

    #[test]
    fn loop_multiplies_costs() {
        let net = NetworkModel::sp2();
        let prog = CommProgram {
            name: "t".into(),
            items: vec![PhaseItem::Loop {
                trips: 10,
                body: vec![
                    PhaseItem::Compute {
                        flops: 100.0,
                        mem_bytes: 800.0,
                    },
                    PhaseItem::Comm(CommPhase {
                        msgs: vec![p2p(1024.0)],
                    }),
                ],
            }],
        };
        let r = simulate(&prog, &net);
        assert_eq!(r.messages, 10);
        assert!((r.bytes - 10240.0).abs() < 1e-9);
        let single = net.msg_time_us(1024.0);
        assert!((r.comm_us - 10.0 * single).abs() < 1e-6);
    }

    #[test]
    fn combined_message_beats_separate_messages() {
        let net = NetworkModel::now_myrinet();
        let sep = CommProgram {
            name: "sep".into(),
            items: vec![PhaseItem::Comm(CommPhase {
                msgs: vec![p2p(2048.0), p2p(2048.0)],
            })],
        };
        let mut comb_msg = p2p(4096.0);
        comb_msg.pieces = 2;
        let comb = CommProgram {
            name: "comb".into(),
            items: vec![PhaseItem::Comm(CommPhase {
                msgs: vec![comb_msg],
            })],
        };
        let rs = simulate(&sep, &net);
        let rc = simulate(&comb, &net);
        assert!(rc.comm_us < rs.comm_us);
        assert_eq!(rc.messages, 1);
        assert_eq!(rs.messages, 2);
    }

    #[test]
    fn collective_rounds_accumulate() {
        let net = NetworkModel::sp2();
        let red = Msg::flat(32.0, 5, MsgKind::Collective, 1); // log2(25) rounded up
        let prog = CommProgram {
            name: "r".into(),
            items: vec![PhaseItem::Comm(CommPhase { msgs: vec![red] })],
        };
        let r = simulate(&prog, &net);
        assert_eq!(r.messages, 5);
        assert!(r.comm_us > 4.0 * net.startup_us);
    }

    #[test]
    fn nested_loops_multiply() {
        let net = NetworkModel::sp2();
        let prog = CommProgram {
            name: "n".into(),
            items: vec![PhaseItem::Loop {
                trips: 3,
                body: vec![PhaseItem::Loop {
                    trips: 4,
                    body: vec![PhaseItem::Comm(CommPhase {
                        msgs: vec![p2p(8.0)],
                    })],
                }],
            }],
        };
        assert_eq!(simulate(&prog, &net).messages, 12);
    }

    #[test]
    fn overlap_hides_communication_under_compute() {
        let net = NetworkModel::sp2();
        let prog = CommProgram {
            name: "o".into(),
            items: vec![PhaseItem::Loop {
                trips: 10,
                body: vec![
                    PhaseItem::Compute {
                        flops: 100_000.0,
                        mem_bytes: 1000.0,
                    },
                    PhaseItem::Comm(CommPhase {
                        msgs: vec![p2p(256.0)],
                    }),
                ],
            }],
        };
        let eager = simulate(&prog, &net);
        let lazy = simulate_overlapped(&prog, &net);
        // Compute dominates: comm fully hidden.
        assert!(lazy.total_us() < eager.total_us());
        assert!((lazy.total_us() - eager.compute_us).abs() < 1e-6);
        assert!((lazy.hidden_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_cannot_beat_the_longer_side() {
        let net = NetworkModel::now_myrinet();
        // Comm-dominated: overlap hides the (smaller) compute instead.
        let prog = CommProgram {
            name: "o2".into(),
            items: vec![
                PhaseItem::Compute {
                    flops: 10.0,
                    mem_bytes: 10.0,
                },
                PhaseItem::Comm(CommPhase {
                    msgs: vec![p2p(1024.0), p2p(1024.0)],
                }),
            ],
        };
        let eager = simulate(&prog, &net);
        let lazy = simulate_overlapped(&prog, &net);
        assert!(lazy.total_us() >= eager.comm_us - 1e-9);
        assert!(lazy.total_us() <= eager.total_us() + 1e-9);
    }

    #[test]
    fn comm_fraction_bounds() {
        let r = SimResult {
            compute_us: 75.0,
            comm_us: 25.0,
            messages: 1,
            bytes: 1.0,
        };
        assert!((r.comm_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(SimResult::default().comm_fraction(), 0.0);
    }

    fn looped_prog(trips: u64) -> CommProgram {
        CommProgram {
            name: "f".into(),
            items: vec![PhaseItem::Loop {
                trips,
                body: vec![
                    PhaseItem::Compute {
                        flops: 100.0,
                        mem_bytes: 800.0,
                    },
                    PhaseItem::Comm(CommPhase {
                        msgs: vec![p2p(2048.0)],
                    }),
                ],
            }],
        }
    }

    #[test]
    fn quiet_plan_is_bit_identical_to_simulate() {
        let net = NetworkModel::sp2();
        let prog = looped_prog(10);
        let rep = simulate_with_faults(&prog, &net, &FaultPlan::quiet());
        let base = simulate(&prog, &net);
        assert_eq!(rep.result, base);
        assert!(rep.faults.is_clean());
    }

    #[test]
    fn same_seed_same_report() {
        let net = NetworkModel::sp2();
        let prog = looped_prog(50);
        let plan = FaultPlan::parse("seed=9,loss=0.2,degrade=0.3:0.5,straggle=0.2:4").unwrap();
        let a = simulate_with_faults(&prog, &net, &plan);
        let b = simulate_with_faults(&prog, &net, &plan);
        assert_eq!(a, b);
        assert!(!a.faults.is_clean(), "20% loss over 50 trips must fault");
    }

    #[test]
    fn loss_costs_time_and_traffic() {
        let net = NetworkModel::sp2();
        let prog = looped_prog(100);
        let clean = simulate(&prog, &net);
        let faulty = simulate_with_faults(&prog, &net, &FaultPlan::with_loss(3, 0.1));
        assert!(faulty.result.comm_us > clean.comm_us);
        assert!(faulty.result.messages > clean.messages);
        assert!(faulty.result.bytes > clean.bytes);
        assert!(faulty.faults.retransmits > 0);
        assert!(faulty.faults.timeouts > 0);
        assert!(faulty.faults.backoff_us > 0.0);
        // Compute side is untouched by message loss.
        assert!((faulty.result.compute_us - clean.compute_us).abs() < 1e-9);
    }

    #[test]
    fn combined_message_falls_back_to_sections() {
        let net = NetworkModel::sp2();
        let mut comb = p2p(8192.0);
        comb.pieces = 4;
        let prog = CommProgram {
            name: "fb".into(),
            items: vec![PhaseItem::Loop {
                trips: 200,
                body: vec![PhaseItem::Comm(CommPhase { msgs: vec![comb] })],
            }],
        };
        let plan = FaultPlan::parse("seed=1,loss=0.5,retries=6").unwrap();
        let rep = simulate_with_faults(&prog, &net, &plan);
        assert!(rep.faults.fallbacks > 0, "50% loss must trigger fallback");
        let mut no_fb = plan.clone();
        no_fb.retry.fallback = false;
        let rep2 = simulate_with_faults(&prog, &net, &no_fb);
        assert_eq!(rep2.faults.fallbacks, 0);
    }

    #[test]
    fn stragglers_stretch_phases() {
        let net = NetworkModel::sp2();
        let prog = looped_prog(100);
        let plan = FaultPlan::parse("seed=5,straggle=1:3").unwrap();
        let rep = simulate_with_faults(&prog, &net, &plan);
        let clean = simulate(&prog, &net);
        assert_eq!(rep.faults.straggled_phases, 100);
        assert!((rep.result.comm_us - 3.0 * clean.comm_us).abs() < 1e-6);
        // No messages were lost, so traffic is unchanged.
        assert_eq!(rep.result.messages, clean.messages);
    }

    #[test]
    fn degraded_link_slows_communication() {
        let net = NetworkModel::sp2();
        let prog = looped_prog(100);
        let plan = FaultPlan::parse("seed=2,degrade=1:0.25").unwrap();
        let rep = simulate_with_faults(&prog, &net, &plan);
        let clean = simulate(&prog, &net);
        assert_eq!(rep.faults.degraded_phases, 100);
        assert!(rep.result.comm_us > clean.comm_us);
        assert_eq!(rep.result.messages, clean.messages);
    }
}
