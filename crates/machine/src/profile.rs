//! The Figure-5 microbenchmark: bandwidth vs. buffer/message size.
//!
//! The paper profiles its targets with a barrier/ping benchmark and plots
//! three curves per machine against a log-scaled size axis: local `bcopy`
//! bandwidth, sender injection bandwidth, and receiver-side end-to-end
//! bandwidth. This module regenerates the same series from a
//! [`NetworkModel`] (our synthetic stand-in for running the 1996 hardware).

use crate::net::NetworkModel;

/// One row of the Figure-5 data: bandwidths at a given size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilePoint {
    /// Buffer / message size in bytes.
    pub bytes: u64,
    /// Local `bcopy` bandwidth, MB/s (top curve).
    pub bcopy_mb: f64,
    /// Sender injection bandwidth, MB/s (middle curve): time for the sender
    /// to hand the message to the network, modelled as the startup cost
    /// plus a copy into the network interface.
    pub inject_mb: f64,
    /// Receiver-observed end-to-end bandwidth, MB/s (bottom curve).
    pub recv_mb: f64,
}

/// Generates the Figure-5 series for `net` over `sizes` (bytes).
pub fn profile(net: &NetworkModel, sizes: &[u64]) -> Vec<ProfilePoint> {
    sizes
        .iter()
        .map(|&b| {
            let bf = b as f64;
            let bcopy_us = net.bcopy_time_us(bf).max(1e-9);
            // Injection: overhead + NI copy at bcopy speed.
            let inject_us = 0.5 * net.startup_us + bcopy_us;
            let recv_us = net.msg_time_us(bf);
            ProfilePoint {
                bytes: b,
                bcopy_mb: bf / bcopy_us,
                inject_mb: bf / inject_us,
                recv_mb: bf / recv_us,
            }
        })
        .collect()
}

/// The default log-spaced size axis used by the paper (16 B … 4 MB).
pub fn default_sizes() -> Vec<u64> {
    let mut v = Vec::new();
    let mut b: u64 = 16;
    while b <= 4 * 1024 * 1024 {
        v.push(b);
        b *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_are_ordered_bcopy_above_recv() {
        // Figure 5: the bcopy curve sits above the network curve at every
        // size (until far beyond cache, where they may approach).
        let net = NetworkModel::sp2();
        for p in profile(&net, &default_sizes()) {
            assert!(
                p.bcopy_mb >= p.recv_mb,
                "bcopy ({}) must dominate network ({}) at {} bytes",
                p.bcopy_mb,
                p.recv_mb,
                p.bytes
            );
        }
    }

    #[test]
    fn injection_between_bcopy_and_receive_for_mid_sizes() {
        // §3: "injection bandwidth is much lower than bcopy, [but] larger
        // than receive bandwidth for certain message sizes".
        let net = NetworkModel::sp2();
        let pts = profile(&net, &default_sizes());
        let mid = pts.iter().find(|p| p.bytes == 8192).unwrap();
        assert!(mid.inject_mb < mid.bcopy_mb);
        assert!(mid.inject_mb > mid.recv_mb);
    }

    #[test]
    fn network_bandwidth_rises_with_size() {
        let net = NetworkModel::now_myrinet();
        let pts = profile(&net, &default_sizes());
        assert!(pts.last().unwrap().recv_mb > 10.0 * pts[0].recv_mb);
    }

    #[test]
    fn default_sizes_log_spaced() {
        let s = default_sizes();
        assert_eq!(s[0], 16);
        assert!(s.windows(2).all(|w| w[1] == 2 * w[0]));
        assert_eq!(*s.last().unwrap(), 4 * 1024 * 1024);
    }
}
