//! Fault injection and retry policy for the communication simulator.
//!
//! The paper's cost model (§3) and runtime results (§5, Figure 10) assume a
//! perfectly reliable SP2/NOW interconnect. Real message-passing layers
//! absorb message loss, transient link degradation, and straggler
//! processors; this module models those effects so Figure-10-style runs can
//! be replayed under adversarial conditions:
//!
//! * [`FaultPlan`] — what goes wrong: per-transmission message-loss
//!   probability, per-phase transient bandwidth degradation, per-phase
//!   straggler slowdown, all driven by a seeded deterministic RNG
//!   ([`Rng64`]) so every run is reproducible.
//! * [`RetryPolicy`] — how the runtime recovers: a timeout derived from the
//!   network model's expected message time, exponential backoff with
//!   jitter, a bounded attempt budget, and a graceful-degradation mode that
//!   falls back from a combined message to per-section sends when the
//!   combined transfer repeatedly times out.
//!
//! [`crate::sim::simulate_with_faults`] executes a
//! [`crate::sim::CommProgram`] under a plan. A [`FaultPlan::is_quiet`] plan
//! takes the exact closed-form path of [`crate::sim::simulate`], so
//! zero-fault reports are bit-identical to the fault-free simulator.

use std::fmt;

use crate::net::NetworkModel;

/// Deterministic 64-bit generator (SplitMix64). Small, seedable, and
/// reproducible across platforms — the properties fault replay needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Rng64 {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[-1, 1)`.
    pub fn jitter(&mut self) -> f64 {
        2.0 * self.next_f64() - 1.0
    }
}

/// How the simulated runtime recovers from lost or stalled transfers.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Timeout as a multiple of the network model's expected time for the
    /// message being sent (never below one startup cost).
    pub timeout_mult: f64,
    /// Exponential backoff growth factor between attempts.
    pub backoff_factor: f64,
    /// Jitter applied to each backoff interval, as a fraction of it.
    pub jitter_frac: f64,
    /// Maximum transmission attempts per message before giving up.
    pub max_attempts: u32,
    /// When a combined (multi-piece) message keeps timing out, fall back
    /// to sending each packed section individually.
    pub fallback: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout_mult: 4.0,
            backoff_factor: 2.0,
            jitter_frac: 0.25,
            max_attempts: 5,
            fallback: true,
        }
    }
}

impl RetryPolicy {
    /// Retransmission timeout for a message whose expected end-to-end time
    /// on the current network is `expected_us`.
    pub fn timeout_us(&self, net: &NetworkModel, expected_us: f64) -> f64 {
        self.timeout_mult.max(1.0) * expected_us.max(net.startup_us)
    }

    /// Backoff wait after the `attempt`-th consecutive timeout (1-based),
    /// exponentially grown from `timeout_us` and jittered.
    pub fn backoff_us(&self, timeout_us: f64, attempt: u32, rng: &mut Rng64) -> f64 {
        let exp = self
            .backoff_factor
            .max(1.0)
            .powi(attempt.saturating_sub(1) as i32);
        let base = timeout_us * exp;
        (base * (1.0 + self.jitter_frac.clamp(0.0, 1.0) * rng.jitter())).max(0.0)
    }

    /// Consecutive timeouts of a combined message after which the
    /// per-section fallback (if enabled) kicks in: half the attempt budget,
    /// at least one.
    pub fn fallback_after(&self) -> u32 {
        (self.max_attempts.max(1) / 2).max(1)
    }

    /// The attempt budget as a loop bound (never zero).
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// Wall-clock backoff after the `attempt`-th consecutive failure
    /// (1-based): the same exponential-plus-jitter curve as
    /// [`RetryPolicy::backoff_us`], grown from a real base interval and
    /// capped so a misconfigured policy can never park a caller for more
    /// than `cap`. This is the form the cluster router points at real
    /// sockets — the simulator path stays in microsecond floats.
    pub fn backoff_wall(
        &self,
        base: std::time::Duration,
        cap: std::time::Duration,
        attempt: u32,
        rng: &mut Rng64,
    ) -> std::time::Duration {
        let us = self.backoff_us(base.as_secs_f64() * 1e6, attempt, rng);
        std::time::Duration::from_secs_f64((us / 1e6).min(cap.as_secs_f64()))
    }
}

/// A reproducible description of the faults injected into one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// RNG seed; the same plan and program always yield the same report.
    pub seed: u64,
    /// Probability that any single transmission attempt is lost.
    pub msg_loss: f64,
    /// Probability that a communication phase runs over a degraded link.
    pub degrade_prob: f64,
    /// Bandwidth multiplier while degraded, in `(0, 1]`.
    pub degrade_factor: f64,
    /// Probability that a communication phase has a straggler processor.
    pub straggle_prob: f64,
    /// Phase slowdown factor when a straggler is present (≥ 1; the BSP
    /// barrier waits for the slowest processor).
    pub straggle_slowdown: f64,
    /// Recovery policy.
    pub retry: RetryPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::quiet()
    }
}

impl FaultPlan {
    /// The fault-free plan: [`crate::sim::simulate_with_faults`] under this
    /// plan is bit-identical to [`crate::sim::simulate`].
    pub fn quiet() -> Self {
        FaultPlan {
            seed: 0,
            msg_loss: 0.0,
            degrade_prob: 0.0,
            degrade_factor: 1.0,
            straggle_prob: 0.0,
            straggle_slowdown: 1.0,
            retry: RetryPolicy::default(),
        }
    }

    /// A plan that only loses messages, with the default retry policy.
    pub fn with_loss(seed: u64, msg_loss: f64) -> Self {
        FaultPlan {
            seed,
            msg_loss,
            ..FaultPlan::quiet()
        }
    }

    /// True when the plan injects nothing (the simulator then takes the
    /// closed-form fault-free path).
    pub fn is_quiet(&self) -> bool {
        self.msg_loss <= 0.0 && self.degrade_prob <= 0.0 && self.straggle_prob <= 0.0
    }

    /// Checks that every probability is in `[0, 1]` and every factor is
    /// positive and sane.
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError`] naming the offending field.
    pub fn validate(&self) -> Result<(), FaultSpecError> {
        let prob = |name: &str, v: f64| -> Result<(), FaultSpecError> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(FaultSpecError::new(format!(
                    "`{name}` must be a probability in [0, 1], got {v}"
                )))
            }
        };
        prob("loss", self.msg_loss)?;
        prob("degrade probability", self.degrade_prob)?;
        prob("straggle probability", self.straggle_prob)?;
        if !(self.degrade_factor > 0.0 && self.degrade_factor <= 1.0) {
            return Err(FaultSpecError::new(format!(
                "`degrade` factor must be in (0, 1], got {}",
                self.degrade_factor
            )));
        }
        if self.straggle_slowdown < 1.0 {
            return Err(FaultSpecError::new(format!(
                "`straggle` slowdown must be ≥ 1, got {}",
                self.straggle_slowdown
            )));
        }
        if self.retry.max_attempts == 0 {
            return Err(FaultSpecError::new("`retries` must be at least 1"));
        }
        if self.retry.timeout_mult < 1.0 {
            return Err(FaultSpecError::new(format!(
                "`timeout` multiplier must be ≥ 1, got {}",
                self.retry.timeout_mult
            )));
        }
        Ok(())
    }

    /// Parses a `--faults` command-line spec: comma-separated `key=value`
    /// settings over [`FaultPlan::quiet`].
    ///
    /// ```text
    /// seed=42,loss=0.01,degrade=0.2:0.5,straggle=0.05:3,retries=5,
    /// timeout=4,backoff=2,jitter=0.25,fallback=on
    /// ```
    ///
    /// `degrade=p:f` degrades bandwidth to fraction `f` with per-phase
    /// probability `p`; `straggle=p:s` slows a phase by factor `s` with
    /// probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError`] on unknown keys, malformed numbers, or
    /// out-of-range values.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan::quiet();
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, value) = item.split_once('=').ok_or_else(|| {
                FaultSpecError::new(format!("expected `key=value`, got `{item}`"))
            })?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => plan.seed = parse_num::<u64>(key, value)?,
                "loss" => plan.msg_loss = parse_num::<f64>(key, value)?,
                "degrade" => {
                    let (p, f) = parse_pair(key, value, 0.5)?;
                    plan.degrade_prob = p;
                    plan.degrade_factor = f;
                }
                "straggle" => {
                    let (p, s) = parse_pair(key, value, 2.0)?;
                    plan.straggle_prob = p;
                    plan.straggle_slowdown = s;
                }
                "retries" => plan.retry.max_attempts = parse_num::<u32>(key, value)?,
                "timeout" => plan.retry.timeout_mult = parse_num::<f64>(key, value)?,
                "backoff" => plan.retry.backoff_factor = parse_num::<f64>(key, value)?,
                "jitter" => plan.retry.jitter_frac = parse_num::<f64>(key, value)?,
                "fallback" => {
                    plan.retry.fallback = match value {
                        "on" | "true" | "1" => true,
                        "off" | "false" | "0" => false,
                        other => {
                            return Err(FaultSpecError::new(format!(
                                "`fallback` must be on/off, got `{other}`"
                            )))
                        }
                    }
                }
                other => {
                    return Err(FaultSpecError::new(format!(
                        "unknown fault key `{other}` (expected seed, loss, degrade, \
                         straggle, retries, timeout, backoff, jitter, or fallback)"
                    )))
                }
            }
        }
        plan.validate()?;
        Ok(plan)
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, FaultSpecError> {
    value
        .parse::<T>()
        .map_err(|_| FaultSpecError::new(format!("`{key}`: cannot parse `{value}` as a number")))
}

/// `p` or `p:x` — a probability with an optional second factor.
fn parse_pair(key: &str, value: &str, default_second: f64) -> Result<(f64, f64), FaultSpecError> {
    match value.split_once(':') {
        Some((p, x)) => Ok((
            parse_num::<f64>(key, p.trim())?,
            parse_num::<f64>(key, x.trim())?,
        )),
        None => Ok((parse_num::<f64>(key, value)?, default_second)),
    }
}

/// An invalid `--faults` specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// Description of the problem.
    pub message: String,
}

impl FaultSpecError {
    fn new(message: impl Into<String>) -> Self {
        FaultSpecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault spec: {}", self.message)
    }
}

impl std::error::Error for FaultSpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_uniformish() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        let mut lo = 0u32;
        for _ in 0..1000 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                lo += 1;
            }
        }
        assert!((400..600).contains(&lo), "biased: {lo}/1000 below 0.5");
    }

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse(
            "seed=7, loss=0.01, degrade=0.2:0.5, straggle=0.05:3, retries=6, \
             timeout=3, backoff=1.5, jitter=0.1, fallback=off",
        )
        .unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.msg_loss, 0.01);
        assert_eq!((p.degrade_prob, p.degrade_factor), (0.2, 0.5));
        assert_eq!((p.straggle_prob, p.straggle_slowdown), (0.05, 3.0));
        assert_eq!(p.retry.max_attempts, 6);
        assert_eq!(p.retry.timeout_mult, 3.0);
        assert_eq!(p.retry.backoff_factor, 1.5);
        assert_eq!(p.retry.jitter_frac, 0.1);
        assert!(!p.retry.fallback);
        assert!(!p.is_quiet());
    }

    #[test]
    fn parse_defaults_and_pairs() {
        let p = FaultPlan::parse("loss=0.05").unwrap();
        assert_eq!(p.msg_loss, 0.05);
        assert_eq!(p.retry.max_attempts, RetryPolicy::default().max_attempts);
        let q = FaultPlan::parse("degrade=0.3").unwrap();
        assert_eq!((q.degrade_prob, q.degrade_factor), (0.3, 0.5));
        assert!(FaultPlan::parse("").unwrap().is_quiet());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("loss=2").is_err());
        assert!(FaultPlan::parse("loss=abc").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("loss").is_err());
        assert!(FaultPlan::parse("retries=0").is_err());
        assert!(FaultPlan::parse("degrade=0.1:0").is_err());
        assert!(FaultPlan::parse("straggle=0.1:0.5").is_err());
        assert!(FaultPlan::parse("fallback=maybe").is_err());
    }

    #[test]
    fn backoff_grows_and_stays_positive() {
        let rp = RetryPolicy::default();
        let mut rng = Rng64::new(1);
        let t = 100.0;
        let mut prev = 0.0;
        for attempt in 1..=5 {
            let b = rp.backoff_us(t, attempt, &mut rng);
            assert!(b > 0.0);
            // Exponential growth dominates the ±25% jitter beyond doubling.
            if attempt > 1 {
                assert!(b > prev * 1.2, "attempt {attempt}: {b} ≤ {prev}");
            }
            prev = b;
        }
    }

    #[test]
    fn backoff_wall_grows_and_respects_the_cap() {
        use std::time::Duration;
        let rp = RetryPolicy::default();
        let mut rng = Rng64::new(7);
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(120);
        let mut prev = Duration::ZERO;
        for attempt in 1..=8 {
            let b = rp.backoff_wall(base, cap, attempt, &mut rng);
            assert!(b > Duration::ZERO);
            assert!(b <= cap, "attempt {attempt}: {b:?} exceeds cap");
            // Monotone until the cap clamps the curve.
            if attempt > 1 && prev < cap.mul_f64(0.5) {
                assert!(b > prev, "attempt {attempt}: {b:?} ≤ {prev:?}");
            }
            prev = b;
        }
        assert_eq!(prev, cap, "deep attempts saturate at the cap");
    }

    #[test]
    fn timeout_never_below_startup() {
        let net = crate::net::NetworkModel::sp2();
        let rp = RetryPolicy::default();
        assert!(rp.timeout_us(&net, 0.0) >= net.startup_us);
        assert!(rp.timeout_us(&net, 1000.0) >= 4.0 * 1000.0 - 1e-9);
    }
}
