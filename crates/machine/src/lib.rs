//! # gcomm-machine — distributed-memory machine model and BSP simulator
//!
//! The paper evaluates on two 1996 machines: the IBM SP2 (custom switch,
//! MPL) and the Berkeley NOW (SPARC workstations, Myrinet, MPICH). Neither
//! is available, so this crate provides the closest synthetic equivalent
//! that exercises the same code path (see DESIGN.md):
//!
//! * [`grid`] — processor grids and block ownership arithmetic,
//! * [`net`] — parametric network models (startup + half-size bandwidth
//!   curve, cache-limited `bcopy`) with presets calibrated to the paper's
//!   Figure 5,
//! * [`cost`] — the paper's §6.1 analytic cost model (`C × partners +
//!   volume`, max over processors, summed over patterns),
//! * [`sim`] — a bulk-synchronous simulator executing a loop-structured
//!   communication program and splitting time into compute and
//!   communication, the quantities Figure 10 plots,
//! * [`profile`] — the Figure-5 microbenchmark (bandwidth vs. buffer size),
//! * [`fault`] — seeded fault injection (message loss, link degradation,
//!   stragglers) and the retry policy the simulator recovers with.

pub mod cost;
pub mod fault;
pub mod grid;
pub mod net;
pub mod profile;
pub mod sim;

pub use fault::{FaultPlan, FaultSpecError, RetryPolicy};
pub use grid::ProcGrid;
pub use net::NetworkModel;
pub use sim::{
    simulate, simulate_overlapped, simulate_with_faults, CommPhase, CommProgram, FaultStats, Msg,
    MsgKind, OverlapResult, PhaseItem, SimReport, SimResult, SimStep,
};
